package spline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPCHIPExactAtKnots(t *testing.T) {
	xs := []float64{0, 1, 3, 4, 7}
	ys := []float64{2, 5, 1, 1, 9}
	p, err := NewPCHIP(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if got := p.Eval(xs[i]); math.Abs(got-ys[i]) > 1e-12 {
			t.Errorf("Eval(%g) = %g, want %g", xs[i], got, ys[i])
		}
	}
}

func TestPCHIPReproducesLine(t *testing.T) {
	p, err := NewPCHIP([]float64{0, 1, 2, 5}, []float64{1, 3, 5, 11})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.5, 1.7, 3.9} {
		want := 1 + 2*x
		if got := p.Eval(x); math.Abs(got-want) > 1e-10 {
			t.Errorf("Eval(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestPCHIPTwoPoints(t *testing.T) {
	p, err := NewPCHIP([]float64{0, 2}, []float64{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Eval(1); math.Abs(got-2) > 1e-12 {
		t.Errorf("two-point Eval(1) = %g, want 2", got)
	}
}

func TestPCHIPMonotonePreservation(t *testing.T) {
	// Monotone data stays monotone between every pair of knots — the
	// property natural cubic splines lack.
	xs := []float64{0, 1, 1.1, 5, 5.1, 10}
	ys := []float64{0, 1, 1.2, 1.3, 4, 5} // monotone, very uneven
	p, err := NewPCHIP(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	prev := p.Eval(0)
	for x := 0.01; x <= 10; x += 0.01 {
		v := p.Eval(x)
		if v < prev-1e-9 {
			t.Fatalf("PCHIP not monotone at x=%g: %g < %g", x, v, prev)
		}
		prev = v
	}
	// Natural cubic through the same data overshoots; demonstrate the
	// contrast that motivates PCHIP for front tables.
	c, err := NewCubic(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	overshoot := false
	for x := 0.01; x <= 10; x += 0.01 {
		if v := c.Eval(x); v < -1e-6 || v > 5+1e-6 {
			overshoot = true
			break
		}
	}
	if !overshoot {
		t.Log("natural cubic did not overshoot on this data (unexpected but not a failure)")
	}
}

func TestPCHIPStaysInDataHullProperty(t *testing.T) {
	// Property: for monotone random data, PCHIP never leaves [min, max].
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(12)
		xs := make([]float64, n)
		ys := make([]float64, n)
		x, y := 0.0, 0.0
		for i := range xs {
			x += 0.05 + r.Float64()*3
			y += r.Float64() * 5
			xs[i] = x
			ys[i] = y
		}
		p, err := NewPCHIP(xs, ys)
		if err != nil {
			return false
		}
		lo, hi := ys[0], ys[n-1]
		for i := 0; i <= 300; i++ {
			xx := xs[0] + (xs[n-1]-xs[0])*float64(i)/300
			v := p.Eval(xx)
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPCHIPLocalExtremumFlat(t *testing.T) {
	// At a local extremum knot the derivative must be zero: no spurious
	// bumps past the peak.
	p, err := NewPCHIP([]float64{0, 1, 2}, []float64{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if v := p.Eval(1.01); v > 1 {
		t.Errorf("overshoot past peak: %g", v)
	}
	if v := p.Eval(0.99); v > 1 {
		t.Errorf("overshoot before peak: %g", v)
	}
}

func TestPCHIPViaNew(t *testing.T) {
	itp, err := New(DegreeMonotoneCubic, []float64{0, 1, 2}, []float64{0, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := itp.(*PCHIP); !ok {
		t.Fatalf("New(DegreeMonotoneCubic) returned %T", itp)
	}
	lo, hi := itp.Domain()
	if lo != 0 || hi != 2 {
		t.Error("domain wrong")
	}
}

func TestPCHIPRejectsBadInput(t *testing.T) {
	if _, err := NewPCHIP([]float64{0}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := NewPCHIP([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("duplicate knots accepted")
	}
}
