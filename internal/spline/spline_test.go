package spline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLinearExactAtKnots(t *testing.T) {
	xs := []float64{0, 1, 2, 4}
	ys := []float64{1, 3, 2, 8}
	l, err := NewLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if got := l.Eval(xs[i]); !almostEqual(got, ys[i], 1e-12) {
			t.Errorf("Eval(%g) = %g, want %g", xs[i], got, ys[i])
		}
	}
	if got := l.Eval(0.5); !almostEqual(got, 2, 1e-12) {
		t.Errorf("midpoint = %g, want 2", got)
	}
}

func TestLinearSortsInput(t *testing.T) {
	l, err := NewLinear([]float64{2, 0, 1}, []float64{4, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Eval(1.5); !almostEqual(got, 3, 1e-12) {
		t.Errorf("Eval(1.5) = %g, want 3 (y = 2x)", got)
	}
}

func TestLinearRejectsDuplicates(t *testing.T) {
	if _, err := NewLinear([]float64{0, 0, 1}, []float64{1, 2, 3}); err == nil {
		t.Fatal("duplicate knots accepted")
	}
}

func TestLinearRejectsMismatch(t *testing.T) {
	if _, err := NewLinear([]float64{0, 1}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestLinearRejectsNaN(t *testing.T) {
	if _, err := NewLinear([]float64{0, math.NaN()}, []float64{1, 2}); err == nil {
		t.Fatal("NaN knot accepted")
	}
}

func TestQuadraticReproducesParabola(t *testing.T) {
	// y = x^2 should be exact for a degree-2 interpolant.
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = x * x
	}
	q, err := NewQuadratic(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.3, 1.7, 2.5, 3.9} {
		if got := q.Eval(x); !almostEqual(got, x*x, 1e-10) {
			t.Errorf("Eval(%g) = %g, want %g", x, got, x*x)
		}
	}
}

func TestCubicExactAtKnots(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 5}
	ys := []float64{0, 2, 1, 4, 3}
	s, err := NewCubic(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if got := s.Eval(xs[i]); !almostEqual(got, ys[i], 1e-10) {
			t.Errorf("Eval(%g) = %g, want %g", xs[i], got, ys[i])
		}
	}
}

func TestCubicReproducesLine(t *testing.T) {
	// A natural cubic spline through collinear points is the line itself.
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7}
	s, err := NewCubic(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.25, 1.5, 2.9} {
		want := 1 + 2*x
		if got := s.Eval(x); !almostEqual(got, want, 1e-10) {
			t.Errorf("Eval(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestCubicNaturalBoundary(t *testing.T) {
	// Second derivative ~0 at the ends: check numerically.
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{0, 1, 0, 1, 0}
	s, err := NewCubic(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	h := 1e-5
	d2lo := (s.Eval(0+2*h) - 2*s.Eval(0+h) + s.Eval(0)) / (h * h)
	if math.Abs(d2lo) > 1e-3 {
		t.Errorf("second derivative at left boundary = %g, want ~0", d2lo)
	}
}

func TestCubicC1Continuity(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{0, 3, -1, 2, 5}
	s, err := NewCubic(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	h := 1e-7
	for _, k := range []float64{1, 2, 3} {
		left := (s.Eval(k) - s.Eval(k-h)) / h
		right := (s.Eval(k+h) - s.Eval(k)) / h
		if math.Abs(left-right) > 1e-4 {
			t.Errorf("derivative jump at knot %g: left %g right %g", k, left, right)
		}
	}
}

func TestCubicDerivMatchesFiniteDifference(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5}
	ys := []float64{0, 1, 4, 9, 16, 25}
	s, err := NewCubic(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.5, 2.3, 4.7} {
		h := 1e-6
		fd := (s.Eval(x+h) - s.Eval(x-h)) / (2 * h)
		if math.Abs(s.Deriv(x)-fd) > 1e-4 {
			t.Errorf("Deriv(%g) = %g, finite diff %g", x, s.Deriv(x), fd)
		}
	}
}

func TestCubicInterpolationProperty(t *testing.T) {
	// Property: spline through random monotone data passes through all
	// knots and stays within a loose bound of the data range.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(12)
		xs := make([]float64, n)
		ys := make([]float64, n)
		x := 0.0
		for i := range xs {
			x += 0.1 + r.Float64()
			xs[i] = x
			ys[i] = r.NormFloat64() * 10
		}
		s, err := NewCubic(xs, ys)
		if err != nil {
			return false
		}
		for i := range xs {
			if !almostEqual(s.Eval(xs[i]), ys[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCubicInvert(t *testing.T) {
	// Monotone data: invert recovers x.
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{0, 1, 3, 6, 10}
	s, err := NewCubic(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for _, y := range []float64{0.5, 2, 5, 9.9} {
		x, err := s.Invert(y)
		if err != nil {
			t.Fatalf("Invert(%g): %v", y, err)
		}
		if got := s.Eval(x); !almostEqual(got, y, 1e-8) {
			t.Errorf("Eval(Invert(%g)) = %g", y, got)
		}
	}
}

func TestCubicInvertOutOfRange(t *testing.T) {
	s, err := NewCubic([]float64{0, 1, 2}, []float64{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Invert(99); err == nil {
		t.Fatal("Invert(99) should fail for data in [0,2]")
	}
}

func TestCubicKnotsCopies(t *testing.T) {
	s, err := NewCubic([]float64{0, 1, 2}, []float64{5, 6, 7})
	if err != nil {
		t.Fatal(err)
	}
	kx, _ := s.Knots()
	kx[0] = 999
	if lo, _ := s.Domain(); lo != 0 {
		t.Error("Knots returned a live reference")
	}
}

func TestNewByDegree(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{0, 1, 4, 9}
	for _, deg := range []Degree{DegreeLinear, DegreeQuadratic, DegreeCubic} {
		itp, err := New(deg, xs, ys)
		if err != nil {
			t.Fatalf("degree %d: %v", deg, err)
		}
		if got := itp.Eval(2); !almostEqual(got, 4, 1e-9) {
			t.Errorf("degree %d: Eval(2) = %g, want 4", deg, got)
		}
	}
	if _, err := New(Degree(7), xs, ys); err == nil {
		t.Error("degree 7 accepted")
	}
}

func TestDomain(t *testing.T) {
	l, _ := NewLinear([]float64{3, 1, 2}, []float64{0, 0, 0})
	lo, hi := l.Domain()
	if lo != 1 || hi != 3 {
		t.Errorf("Domain = (%g, %g), want (1, 3)", lo, hi)
	}
}

func TestCubicAccuracyBeatsLinear(t *testing.T) {
	// The paper chooses cubic "to maximise accuracy": verify on a smooth
	// function that cubic interpolation error < linear interpolation error.
	xs := make([]float64, 9)
	ys := make([]float64, 9)
	for i := range xs {
		xs[i] = float64(i) / 8 * math.Pi
		ys[i] = math.Sin(xs[i])
	}
	lin, _ := NewLinear(xs, ys)
	cub, _ := NewCubic(xs, ys)
	var errLin, errCub float64
	for x := 0.01; x < math.Pi; x += 0.01 {
		want := math.Sin(x)
		if e := math.Abs(lin.Eval(x) - want); e > errLin {
			errLin = e
		}
		if e := math.Abs(cub.Eval(x) - want); e > errCub {
			errCub = e
		}
	}
	if errCub >= errLin {
		t.Errorf("cubic max error %g not better than linear %g", errCub, errLin)
	}
}
