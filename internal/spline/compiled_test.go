package spline

import (
	"math"
	"math/rand"
	"testing"
)

// randomKnots builds n sorted, distinct knots with wildly uneven
// spacing, the regime where segment lookups and spline arithmetic are
// most sensitive.
func randomKnots(rng *rand.Rand, n int) (xs, ys []float64) {
	xs = make([]float64, n)
	ys = make([]float64, n)
	x := rng.Float64() * 10
	for i := 0; i < n; i++ {
		x += 1e-3 + rng.Float64()*math.Pow(10, rng.Float64()*3-1)
		xs[i] = x
		ys[i] = rng.NormFloat64() * 100
	}
	return xs, ys
}

// TestCompiledBitIdentical is the compiled-path contract: for every
// supported interpolator kind, Compiled.Eval must reproduce the
// interpreted Eval bit for bit — including exactly-on-knot queries,
// where the binary search's boundary convention decides which segment
// evaluates — whatever hint the caller supplies.
func TestCompiledBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		xs, ys := randomKnots(rng, 3+rng.Intn(60))
		builders := map[string]func() (Interpolator, error){
			"linear": func() (Interpolator, error) { return NewLinear(xs, ys) },
			"cubic":  func() (Interpolator, error) { return NewCubic(xs, ys) },
			"pchip":  func() (Interpolator, error) { return NewPCHIP(xs, ys) },
		}
		for name, build := range builders {
			itp, err := build()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			c, err := Compile(itp)
			if err != nil {
				t.Fatalf("Compile(%s): %v", name, err)
			}
			lo, hi := itp.Domain()
			if clo, chi := c.Domain(); clo != lo || chi != hi {
				t.Fatalf("%s: Domain = (%g,%g), want (%g,%g)", name, clo, chi, lo, hi)
			}
			hint := -1
			check := func(x float64) {
				want := itp.Eval(x)
				if got := c.Eval(x); math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("%s: Eval(%g) = %g, interpreted %g", name, x, got, want)
				}
				var got float64
				got, hint = c.EvalHint(x, hint)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("%s: EvalHint(%g) = %g, interpreted %g", name, x, got, want)
				}
				// Any hint, however wrong, must not change the result.
				if got, _ := c.EvalHint(x, rng.Intn(len(xs)+4)-2); math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("%s: EvalHint(%g, bad hint) = %g, interpreted %g", name, x, got, want)
				}
			}
			for _, x := range xs { // exact knot hits
				check(x)
			}
			for i := 0; i < 200; i++ { // interior, clustered, and out-of-range
				check(lo + (hi-lo)*(rng.Float64()*1.2-0.1))
			}
		}
	}
}

// TestCompiledSegmentMatchesSearch pins the hint fast path to the
// binary-search convention for every hint value.
func TestCompiledSegmentMatchesSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		xs, ys := randomKnots(rng, 2+rng.Intn(20))
		itp, err := NewLinear(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Compile(itp)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := c.Domain()
		for i := 0; i < 200; i++ {
			x := lo + (hi-lo)*(rng.Float64()*1.4-0.2)
			if i%3 == 0 {
				x = xs[rng.Intn(len(xs))] // exact knot
			}
			want := segment(xs, x)
			for hint := -2; hint <= len(xs); hint++ {
				if got := c.Segment(x, hint); got != want {
					t.Fatalf("Segment(%g, hint %d) = %d, want %d (knots %v)", x, hint, got, want, xs)
				}
			}
		}
	}
}

// TestEvalBatch checks batch evaluation against point evaluation and
// that a pre-sized destination is reused without growth.
func TestEvalBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs, ys := randomKnots(rng, 40)
	cub, err := NewCubic(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(cub)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := c.Domain()
	qs := make([]float64, 500)
	for i := range qs {
		qs[i] = lo + (hi-lo)*rng.Float64()
	}
	dst := make([]float64, 0, len(qs))
	out := c.EvalBatch(dst, qs)
	if len(out) != len(qs) {
		t.Fatalf("EvalBatch returned %d values, want %d", len(out), len(qs))
	}
	if &out[0] != &dst[:1][0] {
		t.Error("EvalBatch reallocated a destination with sufficient capacity")
	}
	for i, x := range qs {
		if want := cub.Eval(x); math.Float64bits(out[i]) != math.Float64bits(want) {
			t.Fatalf("batch[%d] = %g, want %g", i, out[i], want)
		}
	}
}

func TestCompileUnsupported(t *testing.T) {
	xs, ys := randomKnots(rand.New(rand.NewSource(5)), 8)
	q, err := NewQuadratic(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(q); err == nil {
		t.Fatal("Compile(Quadratic) succeeded, want error")
	}
}
