// Package spline implements the interpolation schemes Verilog-A's
// $table_model() supports: piecewise linear (degree 1), piecewise
// quadratic (degree 2) and natural cubic splines (degree 3).
//
// The paper uses cubic splines ("3" in the control string) to maximise
// accuracy; the lower degrees exist both for completeness and for the
// interpolation-degree ablation benchmark.
package spline

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrOutOfRange is returned by evaluations in Error extrapolation mode
// when the query point lies outside the knot range.
var ErrOutOfRange = errors.New("spline: query outside sampled range")

// Interpolator evaluates a 1-D interpolant fitted to (x, y) samples.
type Interpolator interface {
	// Eval returns the interpolated value at x.
	Eval(x float64) float64
	// Domain returns the closed interval covered by the knots.
	Domain() (lo, hi float64)
}

// checkKnots validates and sorts a copy of the sample set.
func checkKnots(xs, ys []float64, minPoints int) ([]float64, []float64, error) {
	if len(xs) != len(ys) {
		return nil, nil, fmt.Errorf("spline: %d x values but %d y values", len(xs), len(ys))
	}
	if len(xs) < minPoints {
		return nil, nil, fmt.Errorf("spline: need at least %d points, got %d", minPoints, len(xs))
	}
	type pt struct{ x, y float64 }
	pts := make([]pt, len(xs))
	for i := range xs {
		if math.IsNaN(xs[i]) || math.IsNaN(ys[i]) {
			return nil, nil, fmt.Errorf("spline: NaN sample at index %d", i)
		}
		pts[i] = pt{xs[i], ys[i]}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
	sx := make([]float64, len(pts))
	sy := make([]float64, len(pts))
	for i, p := range pts {
		if i > 0 && p.x == sx[i-1] {
			return nil, nil, fmt.Errorf("spline: duplicate knot x = %g", p.x)
		}
		sx[i] = p.x
		sy[i] = p.y
	}
	return sx, sy, nil
}

// segment locates the knot interval containing x: the largest i with
// xs[i] <= x, clamped to [0, len(xs)-2].
func segment(xs []float64, x float64) int {
	i := sort.SearchFloat64s(xs, x) - 1
	if i < 0 {
		i = 0
	}
	if i > len(xs)-2 {
		i = len(xs) - 2
	}
	return i
}

// Linear is a piecewise-linear interpolant (Verilog-A degree 1).
type Linear struct {
	xs, ys []float64
}

// NewLinear fits a piecewise-linear interpolant to the samples. The
// samples are copied and sorted by x; duplicate x values are an error.
func NewLinear(xs, ys []float64) (*Linear, error) {
	sx, sy, err := checkKnots(xs, ys, 2)
	if err != nil {
		return nil, err
	}
	return &Linear{xs: sx, ys: sy}, nil
}

// Eval returns the piecewise-linear value at x, extrapolating linearly
// from the end segments when x is outside the knot range.
func (l *Linear) Eval(x float64) float64 {
	i := segment(l.xs, x)
	t := (x - l.xs[i]) / (l.xs[i+1] - l.xs[i])
	return l.ys[i] + t*(l.ys[i+1]-l.ys[i])
}

// Domain returns the knot range.
func (l *Linear) Domain() (lo, hi float64) { return l.xs[0], l.xs[len(l.xs)-1] }

// Quadratic is a piecewise-quadratic interpolant (Verilog-A degree 2).
// Each interior interval uses the parabola through the three nearest
// knots.
type Quadratic struct {
	xs, ys []float64
}

// NewQuadratic fits a piecewise-quadratic interpolant to the samples.
func NewQuadratic(xs, ys []float64) (*Quadratic, error) {
	sx, sy, err := checkKnots(xs, ys, 3)
	if err != nil {
		return nil, err
	}
	return &Quadratic{xs: sx, ys: sy}, nil
}

// Eval returns the quadratic value at x using the Lagrange parabola over
// the three knots nearest the containing interval.
func (q *Quadratic) Eval(x float64) float64 {
	i := segment(q.xs, x)
	// Choose knots i-1, i, i+1 where possible, else i, i+1, i+2.
	j := i
	if j > 0 {
		j--
	}
	if j > len(q.xs)-3 {
		j = len(q.xs) - 3
	}
	x0, x1, x2 := q.xs[j], q.xs[j+1], q.xs[j+2]
	y0, y1, y2 := q.ys[j], q.ys[j+1], q.ys[j+2]
	l0 := (x - x1) * (x - x2) / ((x0 - x1) * (x0 - x2))
	l1 := (x - x0) * (x - x2) / ((x1 - x0) * (x1 - x2))
	l2 := (x - x0) * (x - x1) / ((x2 - x0) * (x2 - x1))
	return y0*l0 + y1*l1 + y2*l2
}

// Domain returns the knot range.
func (q *Quadratic) Domain() (lo, hi float64) { return q.xs[0], q.xs[len(q.xs)-1] }

// Cubic is a natural cubic spline (Verilog-A degree 3): C2-continuous
// piecewise cubics S_i(x) = a_i(x-x_i)^3 + b_i(x-x_i)^2 + c_i(x-x_i) + d_i
// (the paper's eq. 3) with zero second derivative at both ends.
type Cubic struct {
	xs, ys []float64
	// Polynomial coefficients per segment, in the paper's eq. (3) form.
	a, b, c, d []float64
}

// NewCubic fits a natural cubic spline to the samples.
func NewCubic(xs, ys []float64) (*Cubic, error) {
	sx, sy, err := checkKnots(xs, ys, 3)
	if err != nil {
		return nil, err
	}
	n := len(sx)
	// Solve the tridiagonal system for second derivatives m[0..n-1]
	// with natural boundary conditions m[0] = m[n-1] = 0.
	h := make([]float64, n-1)
	for i := range h {
		h[i] = sx[i+1] - sx[i]
	}
	// Thomas algorithm.
	sub := make([]float64, n)
	diag := make([]float64, n)
	sup := make([]float64, n)
	rhs := make([]float64, n)
	diag[0], diag[n-1] = 1, 1
	for i := 1; i < n-1; i++ {
		sub[i] = h[i-1]
		diag[i] = 2 * (h[i-1] + h[i])
		sup[i] = h[i]
		rhs[i] = 6 * ((sy[i+1]-sy[i])/h[i] - (sy[i]-sy[i-1])/h[i-1])
	}
	for i := 1; i < n; i++ {
		w := sub[i] / diag[i-1]
		diag[i] -= w * sup[i-1]
		rhs[i] -= w * rhs[i-1]
	}
	m := make([]float64, n)
	m[n-1] = rhs[n-1] / diag[n-1]
	for i := n - 2; i >= 0; i-- {
		m[i] = (rhs[i] - sup[i]*m[i+1]) / diag[i]
	}
	s := &Cubic{
		xs: sx, ys: sy,
		a: make([]float64, n-1), b: make([]float64, n-1),
		c: make([]float64, n-1), d: make([]float64, n-1),
	}
	for i := 0; i < n-1; i++ {
		s.a[i] = (m[i+1] - m[i]) / (6 * h[i])
		s.b[i] = m[i] / 2
		s.c[i] = (sy[i+1]-sy[i])/h[i] - h[i]*(2*m[i]+m[i+1])/6
		s.d[i] = sy[i]
	}
	return s, nil
}

// Eval returns the spline value at x. Outside the knot range the end
// cubic is continued (callers wanting Verilog-A "E" semantics should
// check Domain first; the table package does).
func (s *Cubic) Eval(x float64) float64 {
	i := segment(s.xs, x)
	dx := x - s.xs[i]
	return ((s.a[i]*dx+s.b[i])*dx+s.c[i])*dx + s.d[i]
}

// Deriv returns the first derivative of the spline at x.
func (s *Cubic) Deriv(x float64) float64 {
	i := segment(s.xs, x)
	dx := x - s.xs[i]
	return (3*s.a[i]*dx+2*s.b[i])*dx + s.c[i]
}

// Domain returns the knot range.
func (s *Cubic) Domain() (lo, hi float64) { return s.xs[0], s.xs[len(s.xs)-1] }

// Knots returns copies of the sorted knot vectors.
func (s *Cubic) Knots() (xs, ys []float64) {
	return append([]float64(nil), s.xs...), append([]float64(nil), s.ys...)
}

// Invert solves s(x) = y for x within the knot domain using bisection
// followed by Newton polish. It requires the spline to be monotone over
// the domain (it scans knot values to pick the bracketing segment); the
// first bracketing segment found is used. Returns ErrOutOfRange when y
// is not bracketed by any segment's endpoint values.
func (s *Cubic) Invert(y float64) (float64, error) {
	n := len(s.xs)
	for i := 0; i < n-1; i++ {
		y0, y1 := s.ys[i], s.ys[i+1]
		lo, hi := s.xs[i], s.xs[i+1]
		if !bracket(y0, y1, y) {
			continue
		}
		// Bisection on the segment.
		a, b := lo, hi
		fa := s.Eval(a) - y
		for iter := 0; iter < 80; iter++ {
			mid := 0.5 * (a + b)
			fm := s.Eval(mid) - y
			if fm == 0 || (b-a) < 1e-15*(math.Abs(a)+math.Abs(b)+1) {
				return mid, nil
			}
			if (fa < 0) == (fm < 0) {
				a, fa = mid, fm
			} else {
				b = mid
			}
		}
		return 0.5 * (a + b), nil
	}
	return 0, fmt.Errorf("%w: no segment brackets y = %g", ErrOutOfRange, y)
}

func bracket(y0, y1, y float64) bool {
	return (y0 <= y && y <= y1) || (y1 <= y && y <= y0)
}

// Degree identifies an interpolation degree as used by Verilog-A
// $table_model control strings.
type Degree int

// Interpolation degrees supported by $table_model.
const (
	DegreeLinear    Degree = 1
	DegreeQuadratic Degree = 2
	DegreeCubic     Degree = 3
)

// New constructs an interpolator of the requested degree.
func New(deg Degree, xs, ys []float64) (Interpolator, error) {
	switch deg {
	case DegreeLinear:
		return NewLinear(xs, ys)
	case DegreeQuadratic:
		return NewQuadratic(xs, ys)
	case DegreeCubic:
		return NewCubic(xs, ys)
	case DegreeMonotoneCubic:
		return NewPCHIP(xs, ys)
	default:
		return nil, fmt.Errorf("spline: unsupported degree %d", deg)
	}
}
