package spline

import "testing"

func benchKnots() ([]float64, []float64) {
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = float64(i%7) + float64(i)/50
	}
	return xs, ys
}

func BenchmarkCubicFit200(b *testing.B) {
	xs, ys := benchKnots()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewCubic(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCubicEval(b *testing.B) {
	xs, ys := benchKnots()
	s, err := NewCubic(xs, ys)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Eval(float64(i%199) + 0.5)
	}
}

func BenchmarkPCHIPEval(b *testing.B) {
	xs, ys := benchKnots()
	p, err := NewPCHIP(xs, ys)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Eval(float64(i%199) + 0.5)
	}
}
