package spline

import "testing"

func benchKnots() ([]float64, []float64) {
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = float64(i%7) + float64(i)/50
	}
	return xs, ys
}

func BenchmarkCubicFit200(b *testing.B) {
	xs, ys := benchKnots()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewCubic(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCubicEval(b *testing.B) {
	xs, ys := benchKnots()
	s, err := NewCubic(xs, ys)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Eval(float64(i%199) + 0.5)
	}
}

func BenchmarkPCHIPEval(b *testing.B) {
	xs, ys := benchKnots()
	p, err := NewPCHIP(xs, ys)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Eval(float64(i%199) + 0.5)
	}
}

// BenchmarkCompiledEvalHint measures the struct-of-arrays hot path with
// a warm segment hint (locally clustered queries, the server's common
// case).
func BenchmarkCompiledEvalHint(b *testing.B) {
	xs, ys := benchKnots()
	s, err := NewCubic(xs, ys)
	if err != nil {
		b.Fatal(err)
	}
	c, err := Compile(s)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	hint := -1
	for i := 0; i < b.N; i++ {
		_, hint = c.EvalHint(float64(i%199)+0.5, hint)
	}
}

// BenchmarkCompiledEvalBatch evaluates 256 ascending points per op —
// the batch shape the server's grouped queries stage through.
func BenchmarkCompiledEvalBatch(b *testing.B) {
	xs, ys := benchKnots()
	s, err := NewPCHIP(xs, ys)
	if err != nil {
		b.Fatal(err)
	}
	c, err := Compile(s)
	if err != nil {
		b.Fatal(err)
	}
	qs := make([]float64, 256)
	for i := range qs {
		qs[i] = 199 * float64(i) / float64(len(qs)-1)
	}
	dst := make([]float64, 0, len(qs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = c.EvalBatch(dst[:0], qs)
	}
}
