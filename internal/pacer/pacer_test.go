package pacer

import (
	"sort"
	"sync"
	"testing"
	"time"
)

// TestSleepUntilNeverEarly is the hard contract: whatever the platform
// primitive does, SleepUntil must not return before the deadline.
func TestSleepUntilNeverEarly(t *testing.T) {
	w := New()
	defer w.Close() //nolint:errcheck
	for _, d := range []time.Duration{0, 50 * time.Microsecond, 500 * time.Microsecond, 5 * time.Millisecond} {
		deadline := time.Now().Add(d)
		w.SleepUntil(deadline)
		if now := time.Now(); now.Before(deadline) {
			t.Fatalf("woke %v early for a %v sleep", deadline.Sub(now), d)
		}
	}
}

// TestSleepUntilPastDeadline must return immediately, not arm a
// zero/negative timer (timerfd_settime with a zero it_value would
// DISARM the timer and block forever).
func TestSleepUntilPastDeadline(t *testing.T) {
	w := New()
	defer w.Close() //nolint:errcheck
	done := make(chan struct{})
	go func() {
		w.SleepUntil(time.Now().Add(-time.Second))
		w.SleepUntil(time.Now())
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("SleepUntil blocked on a deadline in the past")
	}
}

// TestCloseFallback pins the degradation contract: a closed Waiter
// keeps honouring deadlines via time.Sleep.
func TestCloseFallback(t *testing.T) {
	w := New()
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if w.HighRes() {
		t.Fatal("HighRes still true after Close")
	}
	deadline := time.Now().Add(2 * time.Millisecond)
	w.SleepUntil(deadline)
	if time.Now().Before(deadline) {
		t.Fatal("closed Waiter woke early")
	}
}

// TestManyWaitersConcurrent exercises the load-generator shape — many
// goroutines, each owning a Waiter, sleeping staggered sub-millisecond
// deadlines — and reports the observed wake lag. Only gross failures
// fail the test (lag is environment-dependent); the median is logged
// so a regression to epoll-quantised sleeps (~1ms median) is visible
// in test output.
func TestManyWaitersConcurrent(t *testing.T) {
	const (
		workers  = 32
		perG     = 20
		interval = 500 * time.Microsecond
	)
	var (
		mu   sync.Mutex
		lags []time.Duration
		wg   sync.WaitGroup
	)
	start := time.Now().Add(5 * time.Millisecond)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := New()
			defer w.Close() //nolint:errcheck
			for i := 0; i < perG; i++ {
				sched := start.Add(time.Duration(g*perG+i) * interval / workers)
				w.SleepUntil(sched)
				lag := time.Since(sched)
				if lag < 0 {
					t.Errorf("woke %v early", -lag)
					return
				}
				mu.Lock()
				lags = append(lags, lag)
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	sort.Slice(lags, func(i, j int) bool { return lags[i] < lags[j] })
	med := lags[len(lags)/2]
	t.Logf("highres=%v wake lag: p50 %v p99 %v", New().HighRes(), med, lags[len(lags)*99/100])
	if med > 250*time.Millisecond {
		t.Fatalf("median wake lag %v: the waiter is not waking at all sanely", med)
	}
}
