// Package pacer provides a high-resolution absolute-deadline sleeper
// for open-loop load generation.
//
// time.Sleep is the wrong primitive for sub-millisecond pacing: on
// Linux the runtime parks the idle P in epoll_pwait, whose timeout
// argument has whole-millisecond resolution, so a sleeper with a
// 250µs deadline reliably wakes ~750µs late — and a load generator
// that measures latency from the scheduled arrival time (as any
// coordination-omission-aware one must) charges that lag to every
// single request, burying the server's true latency under the
// client's timer noise.
//
// A timerfd expiry, by contrast, is an hrtimer interrupt: it makes the
// fd readable and wakes epoll event-driven, with no timeout
// quantisation. On this path a Waiter wakes within tens of
// microseconds of the deadline. Platforms without timerfd (and any
// environment where creating one fails, e.g. a tight seccomp profile)
// fall back to time.Sleep transparently.
package pacer

import "time"

// Waiter sleeps until absolute deadlines with the best resolution the
// platform offers. A Waiter is owned by one goroutine: SleepUntil must
// not be called concurrently. Close releases the platform resources;
// the zero-value-like fallback Waiter tolerates Close and keeps
// working via time.Sleep.
type Waiter struct {
	platformWaiter
}

// New returns a ready Waiter. It never fails: when the
// high-resolution primitive is unavailable the Waiter silently
// degrades to time.Sleep (check HighRes to know which you got).
func New() *Waiter {
	w := &Waiter{}
	w.init()
	return w
}

// SleepUntil blocks until the deadline has passed. Deadlines already
// in the past return immediately.
func (w *Waiter) SleepUntil(t time.Time) {
	d := time.Until(t)
	if d <= 0 {
		return
	}
	if !w.sleep(d) {
		time.Sleep(d)
	}
	// The primitive can wake a hair early (clock rounding); never
	// return before the deadline.
	for time.Until(t) > 0 {
		time.Sleep(time.Until(t))
	}
}

// HighRes reports whether this Waiter wakes on the platform's
// high-resolution timer rather than the time.Sleep fallback.
func (w *Waiter) HighRes() bool { return w.highRes() }
