//go:build !linux

package pacer

import "time"

// platformWaiter on non-Linux platforms has no high-resolution
// primitive; SleepUntil runs entirely on the time.Sleep fallback.
type platformWaiter struct{}

func (platformWaiter) init()                      {}
func (platformWaiter) sleep(time.Duration) bool   { return false }
func (platformWaiter) highRes() bool              { return false }

// Close is a no-op on the fallback implementation.
func (platformWaiter) Close() error { return nil }
