//go:build linux

package pacer

import (
	"os"
	"syscall"
	"time"
	"unsafe"
)

// platformWaiter wraps a timerfd. The fd is created non-blocking so
// os.NewFile registers it with the runtime netpoller: a Read parks
// only this goroutine, and the hrtimer expiry wakes it event-driven —
// epoll's millisecond timeout quantisation never enters the picture.
type platformWaiter struct {
	f *os.File
	// fd is kept from timerfd_create for the settime syscall:
	// os.File.Fd() would flip the file into blocking mode and
	// deregister it from the netpoller, losing exactly the property we
	// created it for.
	fd  uintptr
	buf [8]byte // expiry counter, read and discarded
}

const (
	clockMonotonic = 1
	tfdNonblock    = 0x800   // O_NONBLOCK
	tfdCloexec     = 0x80000 // O_CLOEXEC
)

// itimerspec mirrors struct itimerspec; Interval stays zero — every
// arm is a one-shot relative timer.
type itimerspec struct {
	Interval syscall.Timespec
	Value    syscall.Timespec
}

func (w *platformWaiter) init() {
	fd, _, errno := syscall.Syscall(syscall.SYS_TIMERFD_CREATE,
		clockMonotonic, tfdNonblock|tfdCloexec, 0)
	if errno != 0 {
		return // f stays nil: time.Sleep fallback
	}
	w.fd = fd
	w.f = os.NewFile(fd, "timerfd")
}

// sleep arms the timer for d and blocks on the fd; false means the
// caller must fall back to time.Sleep.
func (w *platformWaiter) sleep(d time.Duration) bool {
	if w.f == nil {
		return false
	}
	spec := itimerspec{Value: syscall.NsecToTimespec(d.Nanoseconds())}
	_, _, errno := syscall.Syscall6(syscall.SYS_TIMERFD_SETTIME,
		w.fd, 0, uintptr(unsafe.Pointer(&spec)), 0, 0, 0)
	if errno != 0 {
		return false
	}
	_, err := w.f.Read(w.buf[:])
	return err == nil
}

func (w *platformWaiter) highRes() bool { return w.f != nil }

// Close releases the timerfd; the Waiter keeps working via the
// fallback afterwards.
func (w *platformWaiter) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
