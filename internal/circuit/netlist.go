// Package circuit provides the netlist data model of the simulator:
// nodes, devices (passives, sources, controlled sources, MOSFETs) and
// the modified-nodal-analysis stamp interfaces that the analysis package
// drives for DC, AC and transient solutions.
package circuit

import (
	"fmt"
	"strings"
)

// Ground is the index of the reference node. Stamps against Ground are
// silently dropped, which keeps device code free of special cases.
const Ground = -1

// Netlist is a flat circuit: a set of named nodes and devices. The zero
// value is not usable; call New.
type Netlist struct {
	Title string

	nodes map[string]int
	names []string

	devices  []Device
	byName   map[string]int
	branches []int // branch-base per device (offset into branch unknowns)
	nBranch  int
}

// New returns an empty netlist.
func New(title string) *Netlist {
	return &Netlist{
		Title:  title,
		nodes:  make(map[string]int),
		byName: make(map[string]int),
	}
}

// IsGroundName reports whether a node name denotes the reference node.
func IsGroundName(name string) bool {
	switch strings.ToLower(name) {
	case "0", "gnd", "ground", "vss!", "gnd!":
		return true
	}
	return false
}

// Node interns a node name and returns its index (Ground for reference
// names). Node names are case-sensitive apart from the ground aliases.
func (n *Netlist) Node(name string) int {
	if IsGroundName(name) {
		return Ground
	}
	if idx, ok := n.nodes[name]; ok {
		return idx
	}
	idx := len(n.names)
	n.nodes[name] = idx
	n.names = append(n.names, name)
	return idx
}

// NodeIndex looks up an existing node by name without creating it.
func (n *Netlist) NodeIndex(name string) (int, bool) {
	if IsGroundName(name) {
		return Ground, true
	}
	idx, ok := n.nodes[name]
	return idx, ok
}

// NodeName returns the name of node idx ("0" for Ground).
func (n *Netlist) NodeName(idx int) string {
	if idx == Ground {
		return "0"
	}
	return n.names[idx]
}

// NumNodes returns the number of non-ground nodes.
func (n *Netlist) NumNodes() int { return len(n.names) }

// NumBranches returns the number of auxiliary branch-current unknowns.
func (n *Netlist) NumBranches() int { return n.nBranch }

// NumUnknowns returns the size of the MNA system.
func (n *Netlist) NumUnknowns() int { return len(n.names) + n.nBranch }

// Add appends a device. Device names must be unique within the netlist.
func (n *Netlist) Add(d Device) error {
	name := d.Name()
	if name == "" {
		return fmt.Errorf("circuit: device with empty name")
	}
	if _, dup := n.byName[name]; dup {
		return fmt.Errorf("circuit: duplicate device name %q", name)
	}
	n.byName[name] = len(n.devices)
	n.devices = append(n.devices, d)
	n.branches = append(n.branches, len(n.names)+n.nBranch) // provisional
	n.nBranch += d.Branches()
	n.rebase()
	return nil
}

// MustAdd is Add that panics on error; used by topology builders whose
// names are statically unique.
func (n *Netlist) MustAdd(d Device) {
	if err := n.Add(d); err != nil {
		panic(err)
	}
}

// rebase recomputes branch bases; node count may have grown since a
// device was added, so bases are derived fresh each time.
func (n *Netlist) rebase() {
	base := len(n.names)
	for i, d := range n.devices {
		n.branches[i] = base
		base += d.Branches()
	}
}

// Devices returns the device list in insertion order. The returned slice
// must not be modified.
func (n *Netlist) Devices() []Device { return n.devices }

// Device returns the named device, or nil when absent.
func (n *Netlist) Device(name string) Device {
	if i, ok := n.byName[name]; ok {
		return n.devices[i]
	}
	return nil
}

// BranchBase returns the first unknown index of device i's branch
// currents. It recomputes lazily so node interning after Add is safe.
func (n *Netlist) BranchBase(i int) int {
	n.rebase()
	return n.branches[i]
}

// Stats summarises the netlist for logs and tool output.
func (n *Netlist) Stats() string {
	nm := 0
	for _, d := range n.devices {
		if _, ok := d.(*MOSFET); ok {
			nm++
		}
	}
	return fmt.Sprintf("%s: %d nodes, %d devices (%d MOSFETs), %d unknowns",
		n.Title, n.NumNodes(), len(n.devices), nm, n.NumUnknowns())
}

// Clone returns a deep copy of the netlist. Devices are copied via their
// Copy method so that per-instance parameter perturbation (Monte Carlo)
// cannot alias the original.
func (n *Netlist) Clone() *Netlist {
	c := New(n.Title)
	c.names = append([]string(nil), n.names...)
	for k, v := range n.nodes {
		c.nodes[k] = v
	}
	for _, d := range n.devices {
		c.MustAdd(d.Copy())
	}
	return c
}
