package circuit

import (
	"testing"

	"analogyield/internal/mos"
)

func TestNodeInterning(t *testing.T) {
	n := New("t")
	a := n.Node("a")
	b := n.Node("b")
	if a == b {
		t.Error("distinct names must get distinct indices")
	}
	if n.Node("a") != a {
		t.Error("re-interning changed the index")
	}
	if n.NumNodes() != 2 {
		t.Errorf("NumNodes = %d, want 2", n.NumNodes())
	}
}

func TestGroundAliases(t *testing.T) {
	n := New("t")
	for _, g := range []string{"0", "gnd", "GND", "ground", "Gnd"} {
		if n.Node(g) != Ground {
			t.Errorf("Node(%q) should be Ground", g)
		}
	}
	if n.NumNodes() != 0 {
		t.Error("ground aliases must not create nodes")
	}
	if n.NodeName(Ground) != "0" {
		t.Error("NodeName(Ground) should be 0")
	}
}

func TestNodeIndexLookup(t *testing.T) {
	n := New("t")
	n.Node("x")
	if _, ok := n.NodeIndex("x"); !ok {
		t.Error("NodeIndex should find existing node")
	}
	if _, ok := n.NodeIndex("missing"); ok {
		t.Error("NodeIndex should not create nodes")
	}
	if idx, ok := n.NodeIndex("0"); !ok || idx != Ground {
		t.Error("NodeIndex of ground alias")
	}
}

func TestAddDuplicateDevice(t *testing.T) {
	n := New("t")
	a := n.Node("a")
	if err := n.Add(&Resistor{Inst: "R1", A: a, B: Ground, R: 1e3}); err != nil {
		t.Fatal(err)
	}
	if err := n.Add(&Resistor{Inst: "R1", A: a, B: Ground, R: 2e3}); err == nil {
		t.Fatal("duplicate device name accepted")
	}
	if err := n.Add(&Resistor{Inst: "", A: a, B: Ground, R: 2e3}); err == nil {
		t.Fatal("empty device name accepted")
	}
}

func TestBranchAllocation(t *testing.T) {
	n := New("t")
	a, b := n.Node("a"), n.Node("b")
	n.MustAdd(&VSource{Inst: "V1", Pos: a, Neg: Ground, DC: 1})
	n.MustAdd(&Resistor{Inst: "R1", A: a, B: b, R: 1e3})
	n.MustAdd(&VSource{Inst: "V2", Pos: b, Neg: Ground, DC: 2})
	if n.NumBranches() != 2 {
		t.Fatalf("NumBranches = %d, want 2", n.NumBranches())
	}
	if n.NumUnknowns() != 4 {
		t.Fatalf("NumUnknowns = %d, want 4", n.NumUnknowns())
	}
	// V1's branch must come after all nodes.
	if got := n.BranchBase(0); got != 2 {
		t.Errorf("BranchBase(V1) = %d, want 2", got)
	}
	if got := n.BranchBase(2); got != 3 {
		t.Errorf("BranchBase(V2) = %d, want 3", got)
	}
}

func TestBranchBaseAfterLateNodes(t *testing.T) {
	// Interning nodes after adding a branch device must shift bases.
	n := New("t")
	a := n.Node("a")
	n.MustAdd(&VSource{Inst: "V1", Pos: a, Neg: Ground, DC: 1})
	n.Node("late1")
	n.Node("late2")
	if got := n.BranchBase(0); got != 3 {
		t.Errorf("BranchBase after late nodes = %d, want 3", got)
	}
}

func TestDeviceLookup(t *testing.T) {
	n := New("t")
	a := n.Node("a")
	n.MustAdd(&Capacitor{Inst: "C1", A: a, B: Ground, C: 1e-12})
	if n.Device("C1") == nil {
		t.Error("Device(C1) not found")
	}
	if n.Device("C2") != nil {
		t.Error("Device(C2) should be nil")
	}
}

func TestCloneIsDeep(t *testing.T) {
	n := New("t")
	a := n.Node("a")
	m := &MOSFET{Inst: "M1", D: a, G: a, S: Ground, B: Ground,
		W: 10e-6, L: 1e-6, Model: mos.NominalNMOS()}
	n.MustAdd(m)
	c := n.Clone()
	cm := c.Device("M1").(*MOSFET)
	cm.Model.VTO = 99
	if m.Model.VTO == 99 {
		t.Error("Clone shares MOSFET model with original")
	}
	if c.NumNodes() != n.NumNodes() {
		t.Error("Clone lost nodes")
	}
}

func TestStatsMentionsCounts(t *testing.T) {
	n := New("amp")
	a := n.Node("a")
	n.MustAdd(&MOSFET{Inst: "M1", D: a, G: a, S: Ground, B: Ground,
		W: 1e-6, L: 1e-6, Model: mos.NominalNMOS()})
	s := n.Stats()
	if s == "" {
		t.Error("Stats empty")
	}
}

func TestWaveforms(t *testing.T) {
	s := SineWave{Offset: 1, Amp: 2, Freq: 1}
	if got := s.At(0); got != 1 {
		t.Errorf("sine at 0 = %g, want offset 1", got)
	}
	if got := s.At(0.25); got < 2.9 {
		t.Errorf("sine at quarter period = %g, want ~3", got)
	}
	p := PulseWave{V1: 0, V2: 5, Delay: 1e-9, Rise: 1e-9, Fall: 1e-9, Width: 5e-9, Period: 20e-9}
	if p.At(0) != 0 {
		t.Error("pulse before delay should be V1")
	}
	if p.At(3e-9) != 5 {
		t.Error("pulse plateau should be V2")
	}
	if p.At(2.5e-10+1e-9) == 5 {
		t.Error("pulse mid-rise should be between levels")
	}
	if p.At(15e-9) != 0 {
		t.Error("pulse after fall should be V1")
	}
	// Periodic repeat.
	if p.At(23e-9) != 5 {
		t.Error("pulse second period plateau should be V2")
	}
}
