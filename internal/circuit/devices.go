package circuit

import (
	"math"
)

// Resistor is a linear two-terminal resistance.
type Resistor struct {
	Inst string
	A, B int
	R    float64 // ohms, must be > 0
}

// Name returns the instance name.
func (r *Resistor) Name() string { return r.Inst }

// Branches returns 0: resistors add no auxiliary unknowns.
func (r *Resistor) Branches() int { return 0 }

// Copy returns a deep copy.
func (r *Resistor) Copy() Device { c := *r; return &c }

// StampDC stamps the conductance.
func (r *Resistor) StampDC(ctx *DCCtx, _ int) { ctx.StampConductance(r.A, r.B, 1/r.R) }

// StampAC stamps the conductance.
func (r *Resistor) StampAC(ctx *ACCtx, _ int) { ctx.StampAdmittance(r.A, r.B, complex(1/r.R, 0)) }

// StampTran stamps the conductance.
func (r *Resistor) StampTran(ctx *TranCtx, _ int) { ctx.StampConductance(r.A, r.B, 1/r.R) }

// Capacitor is a linear two-terminal capacitance.
type Capacitor struct {
	Inst string
	A, B int
	C    float64 // farads
}

// Name returns the instance name.
func (c *Capacitor) Name() string { return c.Inst }

// Branches returns 0.
func (c *Capacitor) Branches() int { return 0 }

// Copy returns a deep copy.
func (c *Capacitor) Copy() Device { d := *c; return &d }

// StampDC contributes nothing: capacitors are open at DC.
func (c *Capacitor) StampDC(_ *DCCtx, _ int) {}

// StampAC stamps the admittance jωC.
func (c *Capacitor) StampAC(ctx *ACCtx, _ int) {
	ctx.StampAdmittance(c.A, c.B, complex(0, ctx.Omega*c.C))
}

// StampTran stamps the trapezoidal companion model
//
//	i(t) = geq·v(t) − (geq·v(t−dt) + i(t−dt)),  geq = 2C/dt
//
// with the previous current kept in ctx.State.
func (c *Capacitor) StampTran(ctx *TranCtx, _ int) {
	geq := 2 * c.C / ctx.Dt
	vPrev := ctx.VPrev(c.A) - ctx.VPrev(c.B)
	iPrev := 0.0
	if st, ok := ctx.State[c.Inst]; ok {
		iPrev = st[0]
	}
	ieq := geq*vPrev + iPrev
	ctx.StampConductance(c.A, c.B, geq)
	// ieq flows from B to A (it opposes the companion conductance).
	ctx.StampCurrent(c.B, c.A, ieq)
}

// UpdateTranState records the capacitor current after a converged step.
func (c *Capacitor) UpdateTranState(ctx *TranCtx) {
	geq := 2 * c.C / ctx.Dt
	v := ctx.V(c.A) - ctx.V(c.B)
	vPrev := ctx.VPrev(c.A) - ctx.VPrev(c.B)
	iPrev := 0.0
	if st, ok := ctx.State[c.Inst]; ok {
		iPrev = st[0]
	}
	i := geq*(v-vPrev) - iPrev
	ctx.State[c.Inst] = []float64{i}
}

// Inductor is a linear two-terminal inductance with a branch current
// unknown.
type Inductor struct {
	Inst string
	A, B int
	L    float64 // henries
}

// Name returns the instance name.
func (l *Inductor) Name() string { return l.Inst }

// Branches returns 1: the inductor current.
func (l *Inductor) Branches() int { return 1 }

// Copy returns a deep copy.
func (l *Inductor) Copy() Device { c := *l; return &c }

// StampDC treats the inductor as a short (0 V branch equation).
func (l *Inductor) StampDC(ctx *DCCtx, bb int) {
	ctx.AddJ(l.A, bb, 1)
	ctx.AddJ(l.B, bb, -1)
	ctx.AddJ(bb, l.A, 1)
	ctx.AddJ(bb, l.B, -1)
}

// StampAC stamps v(A)−v(B) = jωL·i.
func (l *Inductor) StampAC(ctx *ACCtx, bb int) {
	ctx.AddA(l.A, bb, 1)
	ctx.AddA(l.B, bb, -1)
	ctx.AddA(bb, l.A, 1)
	ctx.AddA(bb, l.B, -1)
	ctx.AddA(bb, bb, complex(0, -ctx.Omega*l.L))
}

// StampTran stamps the backward-Euler companion
// v(t) − (L/dt)·i(t) = −(L/dt)·i(t−dt).
func (l *Inductor) StampTran(ctx *TranCtx, bb int) {
	req := l.L / ctx.Dt
	iPrev := ctx.XPrev[bb]
	ctx.AddJ(l.A, bb, 1)
	ctx.AddJ(l.B, bb, -1)
	ctx.AddJ(bb, l.A, 1)
	ctx.AddJ(bb, l.B, -1)
	ctx.AddJ(bb, bb, -req)
	ctx.AddB(bb, -req*iPrev)
}

// Waveform is a time-dependent source value for transient analysis.
type Waveform interface {
	At(t float64) float64
}

// SineWave is offset + amp·sin(2πf·t + phase).
type SineWave struct {
	Offset, Amp, Freq, Phase float64
}

// At evaluates the waveform.
func (s SineWave) At(t float64) float64 {
	return s.Offset + s.Amp*math.Sin(2*math.Pi*s.Freq*t+s.Phase)
}

// PulseWave is a trapezoidal pulse train (SPICE PULSE semantics,
// simplified to a single period repeated).
type PulseWave struct {
	V1, V2            float64 // low and high levels
	Delay, Rise, Fall float64
	Width, Period     float64
}

// At evaluates the waveform.
func (p PulseWave) At(t float64) float64 {
	if t < p.Delay {
		return p.V1
	}
	tt := t - p.Delay
	if p.Period > 0 {
		tt = math.Mod(tt, p.Period)
	}
	switch {
	case tt < p.Rise:
		return p.V1 + (p.V2-p.V1)*tt/p.Rise
	case tt < p.Rise+p.Width:
		return p.V2
	case tt < p.Rise+p.Width+p.Fall:
		return p.V2 - (p.V2-p.V1)*(tt-p.Rise-p.Width)/p.Fall
	default:
		return p.V1
	}
}

// VSource is an independent voltage source with one branch unknown. Its
// branch current flows from the positive terminal through the source to
// the negative terminal.
type VSource struct {
	Inst     string
	Pos, Neg int
	DC       float64
	ACMag    float64 // small-signal magnitude (phase 0)
	Wave     Waveform
}

// Name returns the instance name.
func (v *VSource) Name() string { return v.Inst }

// Branches returns 1.
func (v *VSource) Branches() int { return 1 }

// Copy returns a deep copy (the waveform is shared; waveforms are
// immutable values).
func (v *VSource) Copy() Device { c := *v; return &c }

// StampDC stamps the branch equation v(Pos)−v(Neg) = DC·SourceScale.
func (v *VSource) StampDC(ctx *DCCtx, bb int) {
	ctx.AddJ(v.Pos, bb, 1)
	ctx.AddJ(v.Neg, bb, -1)
	ctx.AddJ(bb, v.Pos, 1)
	ctx.AddJ(bb, v.Neg, -1)
	ctx.AddB(bb, v.DC*ctx.SourceScale)
}

// StampAC stamps the small-signal branch equation.
func (v *VSource) StampAC(ctx *ACCtx, bb int) {
	ctx.AddA(v.Pos, bb, 1)
	ctx.AddA(v.Neg, bb, -1)
	ctx.AddA(bb, v.Pos, 1)
	ctx.AddA(bb, v.Neg, -1)
	ctx.AddB(bb, complex(v.ACMag, 0))
}

// StampTran stamps the branch equation at the waveform value (falling
// back to DC when no waveform is set).
func (v *VSource) StampTran(ctx *TranCtx, bb int) {
	val := v.DC
	if v.Wave != nil {
		val = v.Wave.At(ctx.Time)
	}
	ctx.AddJ(v.Pos, bb, 1)
	ctx.AddJ(v.Neg, bb, -1)
	ctx.AddJ(bb, v.Pos, 1)
	ctx.AddJ(bb, v.Neg, -1)
	ctx.AddB(bb, val)
}

// ISource is an independent current source; the current flows from Pos
// through the source to Neg (i.e. it is pushed into the Neg node).
type ISource struct {
	Inst     string
	Pos, Neg int
	DC       float64
	ACMag    float64
	Wave     Waveform
}

// Name returns the instance name.
func (i *ISource) Name() string { return i.Inst }

// Branches returns 0.
func (i *ISource) Branches() int { return 0 }

// Copy returns a deep copy.
func (i *ISource) Copy() Device { c := *i; return &c }

// StampDC injects the scaled DC current.
func (i *ISource) StampDC(ctx *DCCtx, _ int) {
	ctx.StampCurrent(i.Pos, i.Neg, i.DC*ctx.SourceScale)
}

// StampAC injects the small-signal current.
func (i *ISource) StampAC(ctx *ACCtx, _ int) {
	ctx.AddB(i.Pos, complex(-i.ACMag, 0))
	ctx.AddB(i.Neg, complex(i.ACMag, 0))
}

// StampTran injects the waveform current.
func (i *ISource) StampTran(ctx *TranCtx, _ int) {
	val := i.DC
	if i.Wave != nil {
		val = i.Wave.At(ctx.Time)
	}
	ctx.StampCurrent(i.Pos, i.Neg, val)
}

// VCVS is a voltage-controlled voltage source (SPICE "E" element):
// v(OutP)−v(OutN) = Gain·(v(InP)−v(InN)).
type VCVS struct {
	Inst                 string
	OutP, OutN, InP, InN int
	Gain                 float64
}

// Name returns the instance name.
func (e *VCVS) Name() string { return e.Inst }

// Branches returns 1.
func (e *VCVS) Branches() int { return 1 }

// Copy returns a deep copy.
func (e *VCVS) Copy() Device { c := *e; return &c }

func (e *VCVS) stampReal(addJ func(i, j int, v float64), bb int) {
	addJ(e.OutP, bb, 1)
	addJ(e.OutN, bb, -1)
	addJ(bb, e.OutP, 1)
	addJ(bb, e.OutN, -1)
	addJ(bb, e.InP, -e.Gain)
	addJ(bb, e.InN, e.Gain)
}

// StampDC stamps the controlled branch.
func (e *VCVS) StampDC(ctx *DCCtx, bb int) { e.stampReal(ctx.AddJ, bb) }

// StampAC stamps the controlled branch.
func (e *VCVS) StampAC(ctx *ACCtx, bb int) {
	e.stampReal(func(i, j int, v float64) { ctx.AddA(i, j, complex(v, 0)) }, bb)
}

// StampTran stamps the controlled branch.
func (e *VCVS) StampTran(ctx *TranCtx, bb int) { e.stampReal(ctx.AddJ, bb) }

// VCCS is a voltage-controlled current source (SPICE "G" element): a
// current Gm·(v(InP)−v(InN)) flows from OutP through the device to OutN.
type VCCS struct {
	Inst                 string
	OutP, OutN, InP, InN int
	Gm                   float64
}

// Name returns the instance name.
func (g *VCCS) Name() string { return g.Inst }

// Branches returns 0.
func (g *VCCS) Branches() int { return 0 }

// Copy returns a deep copy.
func (g *VCCS) Copy() Device { c := *g; return &c }

func (g *VCCS) stampReal(addJ func(i, j int, v float64)) {
	addJ(g.OutP, g.InP, g.Gm)
	addJ(g.OutP, g.InN, -g.Gm)
	addJ(g.OutN, g.InP, -g.Gm)
	addJ(g.OutN, g.InN, g.Gm)
}

// StampDC stamps the transconductance.
func (g *VCCS) StampDC(ctx *DCCtx, _ int) { g.stampReal(ctx.AddJ) }

// StampAC stamps the transconductance.
func (g *VCCS) StampAC(ctx *ACCtx, _ int) {
	g.stampReal(func(i, j int, v float64) { ctx.AddA(i, j, complex(v, 0)) })
}

// StampTran stamps the transconductance.
func (g *VCCS) StampTran(ctx *TranCtx, _ int) { g.stampReal(ctx.AddJ) }
