package circuit

import (
	"analogyield/internal/mos"
)

// MOSFET is a four-terminal MOS transistor instance evaluated with the
// compact model in internal/mos.
type MOSFET struct {
	Inst       string
	D, G, S, B int
	W, L       float64 // metres
	Model      mos.Params
	// LastOP caches the operating point of the most recent DC stamp, so
	// analyses and reports can inspect bias conditions without
	// re-evaluating the model.
	LastOP mos.OP
}

// Name returns the instance name.
func (m *MOSFET) Name() string { return m.Inst }

// Branches returns 0: the MOS stamps are pure conductances/currents.
func (m *MOSFET) Branches() int { return 0 }

// Copy returns a deep copy; Monte Carlo perturbs Model on the copy.
func (m *MOSFET) Copy() Device { c := *m; return &c }

// StampDC stamps the Newton companion of the drain current:
//
//	Id ≈ Id0 + Gm·Δvg + Gds·Δvd + Gmb·Δvb + Gs·Δvs,  Gs = −(Gm+Gds+Gmb)
//
// where the conductances are with respect to absolute terminal voltages
// (see mos.OP). The constant part Ieq = Id0 − Gm·vg − Gds·vd − Gmb·vb −
// Gs·vs goes to the right-hand side.
func (m *MOSFET) StampDC(ctx *DCCtx, _ int) {
	vg, vd, vs, vb := ctx.V(m.G), ctx.V(m.D), ctx.V(m.S), ctx.V(m.B)
	op := m.Model.Eval(m.W, m.L, vg, vd, vs, vb)
	m.LastOP = op
	gs := -(op.Gm + op.Gds + op.Gmb)
	ieq := op.Id - op.Gm*vg - op.Gds*vd - op.Gmb*vb - gs*vs

	// Row D: +Id leaves the drain node.
	ctx.AddJ(m.D, m.G, op.Gm)
	ctx.AddJ(m.D, m.D, op.Gds)
	ctx.AddJ(m.D, m.B, op.Gmb)
	ctx.AddJ(m.D, m.S, gs)
	ctx.AddB(m.D, -ieq)
	// Row S: −Id leaves the source node.
	ctx.AddJ(m.S, m.G, -op.Gm)
	ctx.AddJ(m.S, m.D, -op.Gds)
	ctx.AddJ(m.S, m.B, -op.Gmb)
	ctx.AddJ(m.S, m.S, -gs)
	ctx.AddB(m.S, ieq)
}

// StampAC stamps the small-signal model at the DC bias: gm/gds/gmb as
// real conductances plus the Meyer/junction capacitances as jωC
// admittances.
func (m *MOSFET) StampAC(ctx *ACCtx, _ int) {
	vg, vd, vs, vb := ctx.VDC(m.G), ctx.VDC(m.D), ctx.VDC(m.S), ctx.VDC(m.B)
	op := m.Model.Eval(m.W, m.L, vg, vd, vs, vb)
	gm, gds, gmb := complex(op.Gm, 0), complex(op.Gds, 0), complex(op.Gmb, 0)
	gs := -(gm + gds + gmb)
	ctx.AddA(m.D, m.G, gm)
	ctx.AddA(m.D, m.D, gds)
	ctx.AddA(m.D, m.B, gmb)
	ctx.AddA(m.D, m.S, gs)
	ctx.AddA(m.S, m.G, -gm)
	ctx.AddA(m.S, m.D, -gds)
	ctx.AddA(m.S, m.B, -gmb)
	ctx.AddA(m.S, m.S, -gs)

	w := ctx.Omega
	ctx.StampAdmittance(m.G, m.S, complex(0, w*op.Cgs))
	ctx.StampAdmittance(m.G, m.D, complex(0, w*op.Cgd))
	ctx.StampAdmittance(m.G, m.B, complex(0, w*op.Cgb))
	ctx.StampAdmittance(m.S, m.B, complex(0, w*op.Csb))
	ctx.StampAdmittance(m.D, m.B, complex(0, w*op.Cdb))
}

// StampTran stamps the nonlinear current companion (as in DC) plus
// backward-Euler companions for the bias-point capacitances. Using the
// OP capacitances at each iterate keeps charge conservation approximate
// but is adequate for the functional-verification transients this
// repository runs.
func (m *MOSFET) StampTran(ctx *TranCtx, _ int) {
	vg, vd, vs, vb := ctx.V(m.G), ctx.V(m.D), ctx.V(m.S), ctx.V(m.B)
	op := m.Model.Eval(m.W, m.L, vg, vd, vs, vb)
	m.LastOP = op
	gs := -(op.Gm + op.Gds + op.Gmb)
	ieq := op.Id - op.Gm*vg - op.Gds*vd - op.Gmb*vb - gs*vs
	ctx.AddJ(m.D, m.G, op.Gm)
	ctx.AddJ(m.D, m.D, op.Gds)
	ctx.AddJ(m.D, m.B, op.Gmb)
	ctx.AddJ(m.D, m.S, gs)
	ctx.AddB(m.D, -ieq)
	ctx.AddJ(m.S, m.G, -op.Gm)
	ctx.AddJ(m.S, m.D, -op.Gds)
	ctx.AddJ(m.S, m.B, -op.Gmb)
	ctx.AddJ(m.S, m.S, -gs)
	ctx.AddB(m.S, ieq)

	stampCapBE := func(a, b int, c float64) {
		if c <= 0 {
			return
		}
		geq := c / ctx.Dt
		vPrev := ctx.VPrev(a) - ctx.VPrev(b)
		ctx.StampConductance(a, b, geq)
		ctx.StampCurrent(b, a, geq*vPrev)
	}
	stampCapBE(m.G, m.S, op.Cgs)
	stampCapBE(m.G, m.D, op.Cgd)
	stampCapBE(m.G, m.B, op.Cgb)
	stampCapBE(m.S, m.B, op.Csb)
	stampCapBE(m.D, m.B, op.Cdb)
}
