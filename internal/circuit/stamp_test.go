package circuit

import (
	"math"
	"testing"

	"analogyield/internal/mos"
	"analogyield/internal/num"
)

func newDCCtx(n int) *DCCtx {
	return &DCCtx{J: num.NewMatrix(n), B: make([]float64, n), X: make([]float64, n), SourceScale: 1}
}

func TestDCCtxGroundDropped(t *testing.T) {
	ctx := newDCCtx(2)
	ctx.AddJ(Ground, 0, 5)
	ctx.AddJ(0, Ground, 5)
	ctx.AddB(Ground, 5)
	for _, v := range ctx.J.Data {
		if v != 0 {
			t.Fatal("ground stamp leaked into the matrix")
		}
	}
	if ctx.B[0] != 0 {
		t.Fatal("ground stamp leaked into the RHS")
	}
}

func TestStampConductancePattern(t *testing.T) {
	ctx := newDCCtx(2)
	ctx.StampConductance(0, 1, 0.5)
	if ctx.J.At(0, 0) != 0.5 || ctx.J.At(1, 1) != 0.5 {
		t.Error("diagonal entries wrong")
	}
	if ctx.J.At(0, 1) != -0.5 || ctx.J.At(1, 0) != -0.5 {
		t.Error("off-diagonal entries wrong")
	}
}

func TestStampCurrentDirection(t *testing.T) {
	// Current from node 0 to node 1: leaves 0 (B[0] -= i), enters 1.
	ctx := newDCCtx(2)
	ctx.StampCurrent(0, 1, 1e-3)
	if ctx.B[0] != -1e-3 || ctx.B[1] != 1e-3 {
		t.Errorf("B = %v", ctx.B)
	}
}

func TestDCCtxVGround(t *testing.T) {
	ctx := newDCCtx(1)
	ctx.X[0] = 2.5
	if ctx.V(Ground) != 0 {
		t.Error("V(Ground) != 0")
	}
	if ctx.V(0) != 2.5 {
		t.Error("V(0) wrong")
	}
}

func TestSourceScaleAppliesToDC(t *testing.T) {
	ctx := newDCCtx(2)
	ctx.SourceScale = 0.5
	v := &VSource{Inst: "V1", Pos: 0, Neg: Ground, DC: 2}
	v.StampDC(ctx, 1)
	if ctx.B[1] != 1 {
		t.Errorf("scaled source RHS = %g, want 1", ctx.B[1])
	}
	i := &ISource{Inst: "I1", Pos: 0, Neg: Ground, DC: 2e-3}
	i.StampDC(ctx, 0)
	if math.Abs(ctx.B[0]+1e-3) > 1e-15 {
		t.Errorf("scaled current = %g, want -1e-3", ctx.B[0])
	}
}

func TestACCtxStampAdmittance(t *testing.T) {
	ctx := &ACCtx{A: num.NewCMatrix(2), B: make([]complex128, 2), Omega: 1}
	ctx.StampAdmittance(0, 1, complex(0, 2))
	if ctx.A.At(0, 0) != complex(0, 2) || ctx.A.At(0, 1) != complex(0, -2) {
		t.Error("AC admittance stamp wrong")
	}
	ctx.AddA(Ground, 0, 1)
	ctx.AddB(Ground, 1)
	if ctx.A.At(0, 0) != complex(0, 2) {
		t.Error("ground AC stamp leaked")
	}
}

func TestACCtxVDC(t *testing.T) {
	ctx := &ACCtx{DC: []float64{1.5}}
	if ctx.VDC(Ground) != 0 || ctx.VDC(0) != 1.5 {
		t.Error("VDC wrong")
	}
}

func TestTranCtxHelpers(t *testing.T) {
	ctx := &TranCtx{
		J: num.NewMatrix(2), B: make([]float64, 2),
		X: []float64{1, 2}, XPrev: []float64{3, 4},
		Dt: 1e-9, State: map[string][]float64{},
	}
	if ctx.V(0) != 1 || ctx.VPrev(1) != 4 || ctx.V(Ground) != 0 || ctx.VPrev(Ground) != 0 {
		t.Error("Tran voltage accessors wrong")
	}
	ctx.StampConductance(0, 1, 2)
	if ctx.J.At(0, 0) != 2 || ctx.J.At(1, 0) != -2 {
		t.Error("Tran conductance stamp wrong")
	}
	ctx.StampCurrent(0, 1, 1)
	if ctx.B[0] != -1 || ctx.B[1] != 1 {
		t.Error("Tran current stamp wrong")
	}
	ctx.AddJ(Ground, 0, 9)
	ctx.AddB(Ground, 9)
}

func TestDeviceCopies(t *testing.T) {
	devs := []Device{
		&Resistor{Inst: "R", A: 0, B: 1, R: 1},
		&Capacitor{Inst: "C", A: 0, B: 1, C: 1},
		&Inductor{Inst: "L", A: 0, B: 1, L: 1},
		&VSource{Inst: "V", Pos: 0, Neg: 1, DC: 1},
		&ISource{Inst: "I", Pos: 0, Neg: 1, DC: 1},
		&VCVS{Inst: "E", OutP: 0, OutN: 1, InP: 0, InN: 1, Gain: 1},
		&VCCS{Inst: "G", OutP: 0, OutN: 1, InP: 0, InN: 1, Gm: 1},
		&MOSFET{Inst: "M", D: 0, G: 1, S: Ground, B: Ground,
			W: 1e-6, L: 1e-6, Model: mos.NominalNMOS()},
	}
	for _, d := range devs {
		c := d.Copy()
		if c == d {
			t.Errorf("%s: Copy returned the same pointer", d.Name())
		}
		if c.Name() != d.Name() {
			t.Errorf("%s: Copy changed the name", d.Name())
		}
	}
}

func TestMOSFETStampKCL(t *testing.T) {
	// The DC stamp must be charge-neutral: column sums of the drain and
	// source rows cancel, and the RHS contributions cancel.
	n := New("kcl")
	d := n.Node("d")
	g := n.Node("g")
	s := n.Node("s")
	m := &MOSFET{Inst: "M1", D: d, G: g, S: s, B: Ground,
		W: 10e-6, L: 1e-6, Model: mos.NominalNMOS()}
	n.MustAdd(m)
	ctx := newDCCtx(n.NumUnknowns())
	ctx.X[g], ctx.X[d], ctx.X[s] = 1.2, 1.0, 0.2
	m.StampDC(ctx, 0)
	// Row d + row s must be zero for every column (current conservation).
	for j := 0; j < 3; j++ {
		if sum := ctx.J.At(d, j) + ctx.J.At(s, j); math.Abs(sum) > 1e-12 {
			t.Errorf("column %d: drain+source rows = %g", j, sum)
		}
	}
	if math.Abs(ctx.B[d]+ctx.B[s]) > 1e-15 {
		t.Error("RHS not charge-neutral")
	}
	// Gate row untouched (no DC gate current).
	for j := 0; j < 3; j++ {
		if ctx.J.At(g, j) != 0 {
			t.Error("gate row has DC entries")
		}
	}
}

func TestMOSFETLastOPCached(t *testing.T) {
	n := New("cache")
	d := n.Node("d")
	m := &MOSFET{Inst: "M1", D: d, G: d, S: Ground, B: Ground,
		W: 10e-6, L: 1e-6, Model: mos.NominalNMOS()}
	n.MustAdd(m)
	ctx := newDCCtx(n.NumUnknowns())
	ctx.X[d] = 1.0
	m.StampDC(ctx, 0)
	if m.LastOP.Id <= 0 {
		t.Error("LastOP not cached by StampDC")
	}
}

func newTranCtx(n int) *TranCtx {
	return &TranCtx{
		J: num.NewMatrix(n), B: make([]float64, n),
		X: make([]float64, n), XPrev: make([]float64, n),
		Dt: 1e-9, State: map[string][]float64{},
	}
}

func TestVSourceTranUsesWaveform(t *testing.T) {
	v := &VSource{Inst: "V1", Pos: 0, Neg: Ground, DC: 9,
		Wave: SineWave{Offset: 1, Amp: 0}}
	ctx := newTranCtx(2)
	ctx.Time = 0.5
	v.StampTran(ctx, 1)
	if ctx.B[1] != 1 {
		t.Errorf("waveform value not used: B = %g, want 1", ctx.B[1])
	}
	// No waveform: DC value.
	v2 := &VSource{Inst: "V2", Pos: 0, Neg: Ground, DC: 9}
	ctx2 := newTranCtx(2)
	v2.StampTran(ctx2, 1)
	if ctx2.B[1] != 9 {
		t.Errorf("DC fallback not used: B = %g", ctx2.B[1])
	}
}

func TestISourceStamps(t *testing.T) {
	i := &ISource{Inst: "I1", Pos: 0, Neg: 1, DC: 2e-3, ACMag: 1e-3,
		Wave: SineWave{Offset: 5e-3}}
	// AC: magnitude into the RHS.
	ac := &ACCtx{A: num.NewCMatrix(2), B: make([]complex128, 2), Omega: 1}
	i.StampAC(ac, 0)
	if real(ac.B[0]) != -1e-3 || real(ac.B[1]) != 1e-3 {
		t.Errorf("AC stamp B = %v", ac.B)
	}
	// Tran: waveform value.
	tr := newTranCtx(2)
	i.StampTran(tr, 0)
	if tr.B[0] != -5e-3 || tr.B[1] != 5e-3 {
		t.Errorf("tran stamp B = %v", tr.B)
	}
}

func TestVCVSStampsAllModes(t *testing.T) {
	e := &VCVS{Inst: "E1", OutP: 0, OutN: Ground, InP: 1, InN: Ground, Gain: 4}
	dc := newDCCtx(3)
	e.StampDC(dc, 2)
	if dc.J.At(2, 1) != -4 || dc.J.At(2, 0) != 1 || dc.J.At(0, 2) != 1 {
		t.Error("VCVS DC stamp pattern wrong")
	}
	ac := &ACCtx{A: num.NewCMatrix(3), B: make([]complex128, 3), Omega: 1}
	e.StampAC(ac, 2)
	if ac.A.At(2, 1) != complex(-4, 0) {
		t.Error("VCVS AC stamp wrong")
	}
	tr := newTranCtx(3)
	e.StampTran(tr, 2)
	if tr.J.At(2, 1) != -4 {
		t.Error("VCVS tran stamp wrong")
	}
}

func TestVCCSStampsAllModes(t *testing.T) {
	g := &VCCS{Inst: "G1", OutP: 0, OutN: 1, InP: 1, InN: Ground, Gm: 2e-3}
	dc := newDCCtx(2)
	g.StampDC(dc, 0)
	if dc.J.At(0, 1) != 2e-3 || dc.J.At(1, 1) != -2e-3 {
		t.Error("VCCS DC stamp wrong")
	}
	ac := &ACCtx{A: num.NewCMatrix(2), B: make([]complex128, 2), Omega: 1}
	g.StampAC(ac, 0)
	if ac.A.At(0, 1) != complex(2e-3, 0) {
		t.Error("VCCS AC stamp wrong")
	}
	tr := newTranCtx(2)
	g.StampTran(tr, 0)
	if tr.J.At(0, 1) != 2e-3 {
		t.Error("VCCS tran stamp wrong")
	}
}

func TestInductorStamps(t *testing.T) {
	l := &Inductor{Inst: "L1", A: 0, B: 1, L: 1e-6}
	dc := newDCCtx(3)
	l.StampDC(dc, 2)
	// DC: short — branch equation v(a) − v(b) = 0.
	if dc.J.At(2, 0) != 1 || dc.J.At(2, 1) != -1 || dc.J.At(2, 2) != 0 {
		t.Error("inductor DC stamp wrong")
	}
	ac := &ACCtx{A: num.NewCMatrix(3), B: make([]complex128, 3), Omega: 1e6}
	l.StampAC(ac, 2)
	if imag(ac.A.At(2, 2)) >= 0 {
		t.Error("inductor AC branch should have -jwL")
	}
	tr := newTranCtx(3)
	tr.XPrev[2] = 1e-3 // previous inductor current
	l.StampTran(tr, 2)
	if tr.B[2] >= 0 {
		t.Error("inductor tran companion RHS should carry previous current")
	}
}

func TestCapacitorTranState(t *testing.T) {
	c := &Capacitor{Inst: "C1", A: 0, B: Ground, C: 1e-12}
	ctx := newTranCtx(1)
	ctx.XPrev[0] = 0
	ctx.X[0] = 1 // converged new voltage
	c.StampTran(ctx, 0)
	geq := 2 * c.C / ctx.Dt
	if ctx.J.At(0, 0) != geq {
		t.Errorf("companion conductance = %g, want %g", ctx.J.At(0, 0), geq)
	}
	c.UpdateTranState(ctx)
	st, ok := ctx.State["C1"]
	if !ok || len(st) != 1 {
		t.Fatal("state not recorded")
	}
	// i = geq*(v - vPrev) - iPrev = geq*1.
	if math.Abs(st[0]-geq) > 1e-9 {
		t.Errorf("state current = %g, want %g", st[0], geq)
	}
	// Second step uses the recorded current.
	ctx2 := newTranCtx(1)
	ctx2.State = ctx.State
	ctx2.XPrev[0] = 1
	c.StampTran(ctx2, 0)
	if ctx2.B[0] == 0 {
		t.Error("previous state ignored in companion RHS")
	}
}

func TestCapacitorDCOpen(t *testing.T) {
	c := &Capacitor{Inst: "C1", A: 0, B: 1, C: 1e-12}
	dc := newDCCtx(2)
	c.StampDC(dc, 0)
	for _, v := range dc.J.Data {
		if v != 0 {
			t.Fatal("capacitor stamped at DC")
		}
	}
}

func TestMOSFETTranStampsCaps(t *testing.T) {
	n := New("mtran")
	d := n.Node("d")
	g := n.Node("g")
	m := &MOSFET{Inst: "M1", D: d, G: g, S: Ground, B: Ground,
		W: 10e-6, L: 1e-6, Model: mos.NominalNMOS()}
	n.MustAdd(m)
	ctx := newTranCtx(n.NumUnknowns())
	ctx.X[g], ctx.X[d] = 1.0, 2.0
	ctx.XPrev[g], ctx.XPrev[d] = 1.0, 2.0
	m.StampTran(ctx, 0)
	// Gate row now has capacitive entries (unlike DC).
	hasGate := false
	for j := 0; j < n.NumNodes(); j++ {
		if ctx.J.At(g, j) != 0 {
			hasGate = true
		}
	}
	if !hasGate {
		t.Error("MOSFET transient stamp missing gate capacitance")
	}
}
