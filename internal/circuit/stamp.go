package circuit

import (
	"analogyield/internal/num"
)

// Device is the common interface of all circuit elements. Stamp methods
// receive their branch base (the index of the device's first auxiliary
// current unknown) even when Branches() is zero.
//
// Sign conventions: the MNA node equation at node k reads
// Σ(currents leaving k through devices) = 0, assembled as J·x = b with
// constant/companion current terms moved to b.
type Device interface {
	// Name returns the unique instance name (e.g. "M3", "C1").
	Name() string
	// Branches returns the number of auxiliary current unknowns.
	Branches() int
	// Copy returns a deep copy (for netlist cloning).
	Copy() Device
	// StampDC adds the device's linearised large-signal contribution at
	// the iterate ctx.X.
	StampDC(ctx *DCCtx, branchBase int)
	// StampAC adds the device's small-signal contribution at angular
	// frequency ctx.Omega, linearised about the DC solution ctx.DC.
	StampAC(ctx *ACCtx, branchBase int)
	// StampTran adds the device's companion-model contribution for the
	// timestep ending at ctx.Time.
	StampTran(ctx *TranCtx, branchBase int)
}

// DCCtx carries the Newton iteration state during DC solves.
type DCCtx struct {
	J *num.Matrix // Jacobian, NumUnknowns square
	B []float64   // right-hand side
	X []float64   // current iterate (node voltages + branch currents)
	// SourceScale multiplies all independent sources; the DC solver
	// ramps it from 0 to 1 during source stepping. 1 for a plain solve.
	SourceScale float64
}

// V returns the iterate voltage of a node (0 for Ground).
func (c *DCCtx) V(node int) float64 {
	if node == Ground {
		return 0
	}
	return c.X[node]
}

// AddJ stamps a Jacobian entry, dropping Ground rows/columns.
func (c *DCCtx) AddJ(i, j int, v float64) {
	if i == Ground || j == Ground {
		return
	}
	c.J.Add(i, j, v)
}

// AddB stamps a right-hand-side entry, dropping Ground rows.
func (c *DCCtx) AddB(i int, v float64) {
	if i == Ground {
		return
	}
	c.B[i] += v
}

// StampConductance stamps a two-terminal conductance between nodes a, b.
func (c *DCCtx) StampConductance(a, b int, g float64) {
	c.AddJ(a, a, g)
	c.AddJ(b, b, g)
	c.AddJ(a, b, -g)
	c.AddJ(b, a, -g)
}

// StampCurrent stamps a constant current i flowing from node a to node b
// (leaving a, entering b).
func (c *DCCtx) StampCurrent(a, b int, i float64) {
	c.AddB(a, -i)
	c.AddB(b, i)
}

// ACCtx carries the complex small-signal system.
type ACCtx struct {
	A     *num.CMatrix
	B     []complex128
	Omega float64   // rad/s
	DC    []float64 // solved DC operating point (node voltages + branches)
}

// VDC returns the DC bias voltage of a node (0 for Ground).
func (c *ACCtx) VDC(node int) float64 {
	if node == Ground {
		return 0
	}
	return c.DC[node]
}

// AddA stamps a complex admittance-matrix entry.
func (c *ACCtx) AddA(i, j int, v complex128) {
	if i == Ground || j == Ground {
		return
	}
	c.A.Add(i, j, v)
}

// AddB stamps a complex right-hand-side entry.
func (c *ACCtx) AddB(i int, v complex128) {
	if i == Ground {
		return
	}
	c.B[i] += v
}

// StampAdmittance stamps a two-terminal admittance between nodes a, b.
func (c *ACCtx) StampAdmittance(a, b int, y complex128) {
	c.AddA(a, a, y)
	c.AddA(b, b, y)
	c.AddA(a, b, -y)
	c.AddA(b, a, -y)
}

// TranCtx carries the Newton state of one transient timestep. The
// trapezoidal companion models need the previous solution and the
// previous device currents; the latter are kept in State, keyed by
// device name.
type TranCtx struct {
	J     *num.Matrix
	B     []float64
	X     []float64 // iterate at t = Time
	XPrev []float64 // converged solution at the previous timestep
	Time  float64
	Dt    float64
	// State holds per-device companion history (e.g. capacitor current
	// at the previous accepted timestep).
	State map[string][]float64
}

// V returns the iterate voltage of a node (0 for Ground).
func (c *TranCtx) V(node int) float64 {
	if node == Ground {
		return 0
	}
	return c.X[node]
}

// VPrev returns the previous-timestep voltage of a node.
func (c *TranCtx) VPrev(node int) float64 {
	if node == Ground {
		return 0
	}
	return c.XPrev[node]
}

// AddJ stamps a Jacobian entry, dropping Ground rows/columns.
func (c *TranCtx) AddJ(i, j int, v float64) {
	if i == Ground || j == Ground {
		return
	}
	c.J.Add(i, j, v)
}

// AddB stamps a right-hand-side entry, dropping Ground rows.
func (c *TranCtx) AddB(i int, v float64) {
	if i == Ground {
		return
	}
	c.B[i] += v
}

// StampConductance stamps a two-terminal conductance between nodes a, b.
func (c *TranCtx) StampConductance(a, b int, g float64) {
	c.AddJ(a, a, g)
	c.AddJ(b, b, g)
	c.AddJ(a, b, -g)
	c.AddJ(b, a, -g)
}

// StampCurrent stamps a constant current i flowing from node a to b.
func (c *TranCtx) StampCurrent(a, b int, i float64) {
	c.AddB(a, -i)
	c.AddB(b, i)
}
