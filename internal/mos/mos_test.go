package mos

import (
	"math"
	"testing"
	"testing/quick"

	"analogyield/internal/process"
)

const (
	um = 1e-6
	w0 = 10 * um
	l0 = 1 * um
)

func TestNMOSCutoff(t *testing.T) {
	p := NominalNMOS()
	op := p.Eval(w0, l0, 0.1, 1.5, 0, 0) // vgs far below vth
	if op.Id > 1e-9 {
		t.Errorf("cutoff Id = %g, want < 1 nA", op.Id)
	}
}

func TestNMOSSaturationSquareLaw(t *testing.T) {
	p := NominalNMOS()
	p.LambdaK = 0 // disable CLM for the ideal comparison
	vgs := 1.0
	op := p.Eval(w0, l0, vgs, 2.5, 0, 0)
	vov := vgs - p.VTO
	le := l0 - 2*p.LD
	want := 0.5 * p.KP * (w0 / le) * vov * vov
	if math.Abs(op.Id-want)/want > 0.05 {
		t.Errorf("saturation Id = %g, want ~%g (square law)", op.Id, want)
	}
	if !op.Saturated {
		t.Error("device should report saturation")
	}
}

func TestNMOSTriodeRegion(t *testing.T) {
	p := NominalNMOS()
	op := p.Eval(w0, l0, 2.0, 0.05, 0, 0)
	if op.Saturated {
		t.Error("vds=50mV at vov=1.5V should be triode")
	}
	// Triode at small vds: Id ≈ KP(W/L)·vov·vds.
	le := l0 - 2*p.LD
	want := p.KP * (w0 / le) * (2.0 - p.VTO) * 0.05
	if math.Abs(op.Id-want)/want > 0.15 {
		t.Errorf("triode Id = %g, want ~%g", op.Id, want)
	}
}

func TestNMOSSymmetryAtVdsZero(t *testing.T) {
	p := NominalNMOS()
	op := p.Eval(w0, l0, 1.5, 0, 0, 0)
	if math.Abs(op.Id) > 1e-12 {
		t.Errorf("Id at vds=0 is %g, want 0", op.Id)
	}
	// Reverse operation: current flips sign.
	fwd := p.Eval(w0, l0, 1.5, 0.5, 0, 0)
	// Exchange the drain and source node labels at the same bias.
	rev := p.Eval(w0, l0, 1.5, 0, 0.5, 0)
	if math.Abs(fwd.Id+rev.Id)/math.Abs(fwd.Id) > 1e-9 {
		t.Errorf("source/drain exchange not antisymmetric: %g vs %g", fwd.Id, rev.Id)
	}
	if !rev.Swapped {
		t.Error("reverse operation should report Swapped")
	}
}

func TestPMOSMirrorsNMOS(t *testing.T) {
	n := NominalNMOS()
	pp := NominalPMOS()
	pp.VTO = -n.VTO
	pp.KP = n.KP
	pp.LambdaK = n.LambdaK
	pp.Gamma = n.Gamma
	pp.Phi = n.Phi
	pp.NSub = n.NSub
	nOP := n.Eval(w0, l0, 1.2, 2.0, 0, 0)
	// PMOS with all voltages mirrored about 0.
	pOP := pp.Eval(w0, l0, -1.2, -2.0, 0, 0)
	if math.Abs(nOP.Id+pOP.Id)/nOP.Id > 1e-9 {
		t.Errorf("PMOS mirror current = %g, want %g", pOP.Id, -nOP.Id)
	}
}

func TestPMOSConducts(t *testing.T) {
	p := NominalPMOS()
	// Source at 3.3 V, gate 1.5 V below source, drain at 1 V.
	op := p.Eval(w0, l0, 1.8, 1.0, 3.3, 3.3)
	if op.Id >= 0 {
		t.Errorf("PMOS drain current = %g, want negative (flows out of drain node convention)", op.Id)
	}
	if math.Abs(op.Id) < 1e-6 {
		t.Errorf("PMOS barely conducting: %g", op.Id)
	}
}

func TestBodyEffectRaisesThreshold(t *testing.T) {
	p := NominalNMOS()
	op0 := p.Eval(w0, l0, 1.0, 2.0, 0, 0)
	opb := p.Eval(w0, l0, 1.0, 2.0, 0, -1.0) // reverse body bias
	if opb.Vth <= op0.Vth {
		t.Errorf("Vth with vbs=-1 (%g) should exceed Vth at vbs=0 (%g)", opb.Vth, op0.Vth)
	}
	if opb.Id >= op0.Id {
		t.Error("reverse body bias should reduce the current")
	}
}

func TestGmMatchesFiniteDifferenceOfId(t *testing.T) {
	p := NominalNMOS()
	op := p.Eval(w0, l0, 1.1, 1.8, 0, 0)
	h := 1e-4
	fd := (p.Eval(w0, l0, 1.1+h, 1.8, 0, 0).Id - p.Eval(w0, l0, 1.1-h, 1.8, 0, 0).Id) / (2 * h)
	if math.Abs(op.Gm-fd)/fd > 1e-3 {
		t.Errorf("Gm = %g, coarse FD = %g", op.Gm, fd)
	}
	if op.Gm <= 0 {
		t.Error("Gm must be positive in the conducting region")
	}
}

func TestGdsPositiveWithLambda(t *testing.T) {
	p := NominalNMOS()
	op := p.Eval(w0, l0, 1.1, 2.5, 0, 0)
	if op.Gds <= 0 {
		t.Errorf("saturation Gds = %g, want > 0 (channel-length modulation)", op.Gds)
	}
	// Longer channel → smaller lambda → smaller gds at same current.
	long := p.Eval(w0, 4*um, 1.1, 2.5, 0, 0)
	if long.Gds/long.Id >= op.Gds/op.Id {
		t.Error("gds/Id should fall with channel length")
	}
}

func TestGainIncreasesWithLength(t *testing.T) {
	// Intrinsic gain gm/gds must grow with L — the mechanism behind the
	// paper's gain/PM trade-off.
	p := NominalNMOS()
	gain := func(l float64) float64 {
		op := p.Eval(w0, l, 1.0, 2.0, 0, 0)
		return op.Gm / op.Gds
	}
	if !(gain(4*um) > gain(1*um) && gain(1*um) > gain(0.35*um)) {
		t.Errorf("intrinsic gain not increasing with L: %g %g %g",
			gain(0.35*um), gain(1*um), gain(4*um))
	}
}

func TestCurrentContinuityProperty(t *testing.T) {
	// The smooth model must have no jumps: |Id(v+h) − Id(v)| → 0 with h.
	p := NominalNMOS()
	f := func(seedVgs, seedVds uint8) bool {
		vgs := float64(seedVgs)/255*3 - 0.5 // −0.5 .. 2.5
		vds := float64(seedVds)/255*4 - 2   // −2 .. 2 (crosses the swap point)
		h := 1e-7
		a := p.Eval(w0, l0, vgs, vds, 0, 0).Id
		b := p.Eval(w0, l0, vgs, vds+h, 0, 0).Id
		return math.Abs(a-b) < 1e-3*(math.Abs(a)+1e-9)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSubthresholdExponential(t *testing.T) {
	p := NominalNMOS()
	i1 := p.Eval(w0, l0, 0.35, 1.5, 0, 0).Id
	i2 := p.Eval(w0, l0, 0.25, 1.5, 0, 0).Id
	if i1 <= 0 || i2 <= 0 {
		t.Fatal("subthreshold current must stay positive (Newton robustness)")
	}
	if i1/i2 < 5 {
		t.Errorf("100 mV below threshold should change Id by >5x, got %g", i1/i2)
	}
}

func TestAppliedShift(t *testing.T) {
	n := NominalNMOS()
	sh := process.Shift{DVth: 0.05, DBeta: -0.1}
	na := n.Applied(sh)
	if na.VTO != n.VTO+0.05 {
		t.Errorf("NMOS VTO after shift = %g, want %g", na.VTO, n.VTO+0.05)
	}
	if math.Abs(na.KP-0.9*n.KP) > 1e-18 {
		t.Errorf("KP after shift = %g, want %g", na.KP, 0.9*n.KP)
	}
	p := NominalPMOS()
	pa := p.Applied(sh)
	if pa.VTO != p.VTO-0.05 {
		t.Errorf("PMOS VTO after shift = %g, want %g (|Vth| grows)", pa.VTO, p.VTO-0.05)
	}
	// A slow shift must reduce the current.
	idNom := n.Eval(w0, l0, 1.0, 2.0, 0, 0).Id
	idSlow := na.Eval(w0, l0, 1.0, 2.0, 0, 0).Id
	if idSlow >= idNom {
		t.Error("slow corner should reduce drain current")
	}
}

func TestAppliedShiftDegenerateKP(t *testing.T) {
	n := NominalNMOS()
	na := n.Applied(process.Shift{DBeta: -2})
	if na.KP <= 0 {
		t.Error("Applied must keep KP positive")
	}
}

func TestCapacitancesSane(t *testing.T) {
	p := NominalNMOS()
	sat := p.Eval(w0, l0, 1.0, 2.5, 0, 0)
	tri := p.Eval(w0, l0, 2.5, 0.05, 0, 0)
	if sat.Cgs <= 0 || sat.Cgd <= 0 || sat.Csb <= 0 {
		t.Error("capacitances must be positive")
	}
	// Saturation: Cgs > Cgd (channel pinched at drain).
	if sat.Cgs <= sat.Cgd {
		t.Errorf("saturation Cgs (%g) should exceed Cgd (%g)", sat.Cgs, sat.Cgd)
	}
	// Triode: Cgs ≈ Cgd.
	if math.Abs(tri.Cgs-tri.Cgd)/tri.Cgs > 0.2 {
		t.Errorf("triode Cgs (%g) and Cgd (%g) should be close", tri.Cgs, tri.Cgd)
	}
	// Bigger device → bigger caps.
	big := p.Eval(4*w0, l0, 1.0, 2.5, 0, 0)
	if big.Cgs <= sat.Cgs {
		t.Error("Cgs should scale with W")
	}
}

func TestEvalPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero width accepted")
		}
	}()
	NominalNMOS().Eval(0, l0, 1, 1, 0, 0)
}

func TestNominalByClass(t *testing.T) {
	if Nominal(process.NMOS).Class != process.NMOS {
		t.Error("Nominal(NMOS) wrong class")
	}
	if Nominal(process.PMOS).Class != process.PMOS {
		t.Error("Nominal(PMOS) wrong class")
	}
	if Nominal(process.PMOS).VTO >= 0 {
		t.Error("PMOS VTO should be negative")
	}
}
