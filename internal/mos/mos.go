// Package mos implements a smooth compact MOSFET model for the circuit
// simulator: strong-inversion square law with channel-length modulation
// and body effect, a softplus subthreshold blend for Newton robustness,
// a BSIM-style smooth triode/saturation transition, and Meyer gate
// capacitances.
//
// This stands in for the BSim3v3 foundry models the paper uses: the
// OTA's gain/phase-margin behaviour is first-order in gm, gds(λ(L)),
// mirror ratios and node capacitances, all of which this model captures.
package mos

import (
	"fmt"
	"math"

	"analogyield/internal/process"
)

// Thermal voltage kT/q at 300 K.
const vTherm = 0.02585

// Params holds the electrical parameters of one device type. Voltages
// follow the usual SPICE sign convention: VTO is positive for NMOS and
// negative for PMOS.
type Params struct {
	Class   process.DeviceClass
	VTO     float64 // zero-bias threshold voltage, V (signed)
	KP      float64 // transconductance factor µ0·Cox, A/V²
	LambdaK float64 // channel-length modulation: λ = LambdaK / Leff, m/V
	Gamma   float64 // body-effect coefficient, √V
	Phi     float64 // surface potential 2φF, V
	NSub    float64 // subthreshold slope factor (dimensionless, ~1.3)
	Cox     float64 // gate capacitance per area, F/m²
	CGSO    float64 // gate-source overlap capacitance per width, F/m
	CGDO    float64 // gate-drain overlap capacitance per width, F/m
	CJ      float64 // junction capacitance per area, F/m²
	LD      float64 // lateral diffusion, m (Leff = L − 2·LD)
	JuncExt float64 // source/drain junction extent, m (area = W·JuncExt)
}

// NominalNMOS returns 0.35 µm-class NMOS parameters.
func NominalNMOS() Params {
	return Params{
		Class:   process.NMOS,
		VTO:     0.50,
		KP:      170e-6,
		LambdaK: 0.08e-6,
		Gamma:   0.58,
		Phi:     0.84,
		NSub:    1.3,
		Cox:     4.54e-3,
		CGSO:    1.2e-10,
		CGDO:    1.2e-10,
		CJ:      0.94e-3,
		LD:      0.03e-6,
		JuncExt: 0.85e-6,
	}
}

// NominalPMOS returns 0.35 µm-class PMOS parameters.
func NominalPMOS() Params {
	return Params{
		Class:   process.PMOS,
		VTO:     -0.65,
		KP:      58e-6,
		LambdaK: 0.11e-6,
		Gamma:   0.40,
		Phi:     0.80,
		NSub:    1.35,
		Cox:     4.54e-3,
		CGSO:    0.9e-10,
		CGDO:    0.9e-10,
		CJ:      1.36e-3,
		LD:      0.03e-6,
		JuncExt: 0.85e-6,
	}
}

// Nominal returns the nominal parameters for the given class.
func Nominal(c process.DeviceClass) Params {
	if c == process.PMOS {
		return NominalPMOS()
	}
	return NominalNMOS()
}

// Applied returns a copy of p with a statistical process shift applied.
// Shift.DVth increases the threshold magnitude ("slower"), so it adds to
// an NMOS VTO and subtracts from a (negative) PMOS VTO; DBeta scales KP.
func (p Params) Applied(s process.Shift) Params {
	out := p
	if p.Class == process.PMOS {
		out.VTO -= s.DVth
	} else {
		out.VTO += s.DVth
	}
	out.KP *= 1 + s.DBeta
	if out.KP <= 0 {
		out.KP = 1e-12 // degenerate sample; keep the model evaluable
	}
	return out
}

// OP is the operating-point of one device: drain current, small-signal
// conductances and capacitances. The conductances are derivatives of the
// drain-terminal current with respect to the *absolute terminal
// voltages* (gate, drain, bulk; source held fixed), which is exactly the
// form the MNA stamps consume:
//
//	dId/dVs = −(Gm + Gds + Gmb) by KCL.
type OP struct {
	Id            float64 // current into the drain terminal, A
	Gm, Gds, Gmb  float64 // ∂Id/∂Vg, ∂Id/∂Vd, ∂Id/∂Vb (Vs fixed), S
	Cgs, Cgd, Cgb float64 // gate capacitances, F (terminal-referenced)
	Csb, Cdb      float64 // junction capacitances, F
	Vgs, Vds, Vbs float64 // applied terminal differences (signed)
	Vth           float64 // effective threshold incl. body effect (signed)
	Vov           float64 // smooth overdrive used by the model, V (>0)
	Saturated     bool    // vds beyond vdsat (in the conducting frame)
	Swapped       bool    // drain/source roles exchanged internally
}

// geometry-checked effective length.
func (p Params) leff(l float64) float64 {
	le := l - 2*p.LD
	if le <= 1e-9 {
		le = 1e-9
	}
	return le
}

// idsPrimitive evaluates the NMOS-frame drain current for vds >= 0.
func (p Params) idsPrimitive(w, l, vgs, vds, vbs float64) (id, vov, vdsat float64, sat bool) {
	le := p.leff(l)
	// Body effect with a smooth clamp keeping the sqrt argument positive.
	vto := math.Abs(p.VTO)
	arg := p.Phi - vbs
	const argMin = 0.05
	if arg < argMin {
		arg = argMin
	}
	vth := vto + p.Gamma*(math.Sqrt(arg)-math.Sqrt(p.Phi))
	// Smooth overdrive (softplus): strong inversion → vgs−vth,
	// subthreshold → exponentially small but non-zero.
	nvt := 2 * p.NSub * vTherm
	x := (vgs - vth) / nvt
	switch {
	case x > 40:
		vov = vgs - vth
	case x < -40:
		vov = nvt * math.Exp(x)
	default:
		vov = nvt * math.Log1p(math.Exp(x))
	}
	vdsat = vov
	if vdsat < 1e-9 {
		vdsat = 1e-9
	}
	// Smooth effective vds (order-4 blend between triode and saturation).
	r := vds / vdsat
	vdse := vds / math.Pow(1+math.Pow(r, 4), 0.25)
	lambda := p.LambdaK / le
	id = p.KP * (w / le) * (vov*vdse - 0.5*vdse*vdse) * (1 + lambda*vds)
	return id, vov, vdsat, vds > vdsat
}

// drainCurrent returns the signed current into the drain terminal for
// absolute terminal voltages, handling PMOS mirroring and source/drain
// swap so the model is symmetric about vds = 0.
func (p Params) drainCurrent(w, l, vg, vd, vs, vb float64) float64 {
	if p.Class == process.PMOS {
		// Mirror into the NMOS frame.
		vg, vd, vs, vb = -vg, -vd, -vs, -vb
	}
	sign := 1.0
	if vd < vs {
		vd, vs = vs, vd
		sign = -1
	}
	id, _, _, _ := p.idsPrimitive(w, l, vg-vs, vd-vs, vb-vs)
	if p.Class == process.PMOS {
		sign = -sign
	}
	return sign * id
}

// Eval computes the full operating point of a device with the given
// geometry at absolute terminal voltages (gate, drain, source, bulk).
func (p Params) Eval(w, l, vg, vd, vs, vb float64) OP {
	if w <= 0 || l <= 0 {
		panic(fmt.Sprintf("mos: non-positive geometry W=%g L=%g", w, l))
	}
	op := OP{
		Vgs: vg - vs, Vds: vd - vs, Vbs: vb - vs,
	}
	op.Id = p.drainCurrent(w, l, vg, vd, vs, vb)

	// Small-signal conductances by central finite differences on the
	// smooth current function. The step is far above double-precision
	// noise and far below any feature size of the model.
	const h = 1e-6
	op.Gm = (p.drainCurrent(w, l, vg+h, vd, vs, vb) - p.drainCurrent(w, l, vg-h, vd, vs, vb)) / (2 * h)
	op.Gds = (p.drainCurrent(w, l, vg, vd+h, vs, vb) - p.drainCurrent(w, l, vg, vd-h, vs, vb)) / (2 * h)
	op.Gmb = (p.drainCurrent(w, l, vg, vd, vs, vb+h) - p.drainCurrent(w, l, vg, vd, vs, vb-h)) / (2 * h)

	// Region bookkeeping in the conducting frame.
	fvg, fvd, fvs, fvb := vg, vd, vs, vb
	if p.Class == process.PMOS {
		fvg, fvd, fvs, fvb = -vg, -vd, -vs, -vb
	}
	swapped := fvd < fvs
	if swapped {
		fvd, fvs = fvs, fvd
	}
	_, vov, vdsat, sat := p.idsPrimitive(w, l, fvg-fvs, fvd-fvs, fvb-fvs)
	op.Vov, op.Saturated, op.Swapped = vov, sat, swapped
	arg := p.Phi - (fvb - fvs)
	if arg < 0.05 {
		arg = 0.05
	}
	vthMag := math.Abs(p.VTO) + p.Gamma*(math.Sqrt(arg)-math.Sqrt(p.Phi))
	if p.Class == process.PMOS {
		op.Vth = -vthMag
	} else {
		op.Vth = vthMag
	}

	// Meyer capacitances, blended between triode (½/½) and saturation
	// (⅔/0) by the saturation ratio.
	le := p.leff(l)
	cch := w * le * p.Cox
	ratio := (fvd - fvs) / vdsat
	if ratio > 1 {
		ratio = 1
	}
	if ratio < 0 {
		ratio = 0
	}
	cgsInt := cch * (0.5 + ratio/6.0)
	cgdInt := cch * 0.5 * (1 - ratio)
	if swapped {
		cgsInt, cgdInt = cgdInt, cgsInt
	}
	op.Cgs = cgsInt + p.CGSO*w
	op.Cgd = cgdInt + p.CGDO*w
	op.Cgb = 0.1 * cch
	cj := p.CJ * w * p.JuncExt
	op.Csb = cj
	op.Cdb = cj
	return op
}
