package mos

import "testing"

func BenchmarkEvalSaturation(b *testing.B) {
	p := NominalNMOS()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Eval(10e-6, 1e-6, 1.0, 2.0, 0, 0)
	}
}
