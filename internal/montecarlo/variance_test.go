package montecarlo

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"analogyield/internal/process"
)

// sigmaEval returns the NMOS global Vth shift in sigma units — an
// exactly standard-normal metric, so yields against any bound are
// known analytically.
func sigmaEval(s *process.Sample) ([]float64, error) {
	return []float64{s.GlobalSigmaUnits()[0]}, nil
}

func sigmaFactory() Evaluator { return sigmaEval }

// smoothEval is a smooth function of the global shifts only (no
// mismatch), which the surrogate can learn almost perfectly.
func smoothEval(s *process.Sample) ([]float64, error) {
	u := s.GlobalSigmaUnits()
	return []float64{10 + 2*u[0] - u[2] + 0.3*u[1]*u[3]}, nil
}

func TestParseStrategy(t *testing.T) {
	cases := map[string]Strategy{
		"":             StrategyNaive,
		"naive":        StrategyNaive,
		"is":           StrategyIS,
		"surrogate":    StrategySurrogate,
		"is+surrogate": StrategyISSurrogate,
	}
	for name, want := range cases {
		got, err := ParseStrategy(name)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v", name, got, err)
		}
		if name != "" && got.String() != name {
			t.Errorf("Strategy(%v).String() = %q, want %q", got, got.String(), name)
		}
	}
	if _, err := ParseStrategy("qmc"); err == nil {
		t.Error("unknown strategy accepted")
	}
}

// TestRunVarianceNaiveDelegates checks the naive strategy is literally
// the existing engine: bit-identical samples and statistics.
func TestRunVarianceNaiveDelegates(t *testing.T) {
	opts := Options{Proc: proc(), Samples: 300, Seed: 9, Workers: 4}
	a, err := RunVariance(context.Background(), opts, VarianceOptions{}, sigmaFactory)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFactory(context.Background(), opts, sigmaFactory)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("StrategyNaive result differs from RunFactory")
	}
	if a.Weights != nil || a.Decisions != nil {
		t.Error("naive run must not carry IS weights or filter decisions")
	}
}

// TestISIdenticalAcrossWorkers is the determinism contract for the
// variance strategies: sample i derives from (seed, i) only, so every
// field of the result is bit-identical for any worker count.
func TestISIdenticalAcrossWorkers(t *testing.T) {
	for _, strat := range []Strategy{StrategyIS, StrategySurrogate, StrategyISSurrogate} {
		v := VarianceOptions{Strategy: strat, TrainSamples: 32, CorrectionSamples: 8}
		run := func(workers int) *Result {
			t.Helper()
			res, err := RunVariance(context.Background(),
				Options{Proc: proc(), Samples: 400, Seed: 17, Workers: workers},
				v, func() Evaluator { return smoothEval })
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		a, b := run(1), run(7)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%v: results differ between 1 and 7 workers", strat)
		}
	}
}

// TestISUnbiasedHighSigmaSpec is the acceptance test for the estimator:
// at a 99.9 %-yield spec (bound 3.09σ) a naive 200-sample run resolves
// nothing — it sees zero failures — while the IS estimator recovers the
// true yield within its own statistical tolerance using a few thousand
// samples. The tolerance is derived from the empirical spread of
// independent IS replicates, not hard-coded.
func TestISUnbiasedHighSigmaSpec(t *testing.T) {
	const bound = 3.0902323061678132 // Φ(bound) = 0.999
	trueYield := 0.999
	pass := func(m []float64) bool { return m[0] <= bound }

	// Naive 200-sample runs: expected failures per run is 0.2, so the
	// typical run reports 100 % yield — the spec is out of reach.
	naive, err := RunFactory(context.Background(),
		Options{Proc: proc(), Samples: 200, Seed: 1}, sigmaFactory)
	if err != nil {
		t.Fatal(err)
	}
	if y, ok := naive.Yield(pass); !ok || y != 1 {
		// A different seed could catch a failure; the point stands as
		// long as the estimate cannot distinguish 99.9 % from 100 %.
		t.Logf("naive 200-sample yield = %g (resolution 1/200)", y)
	}

	// 20 independent IS replicates of 1000 samples each.
	const reps = 20
	ests := make([]float64, reps)
	tailHits := 0
	for r := 0; r < reps; r++ {
		res, err := RunVariance(context.Background(),
			Options{Proc: proc(), Samples: 1000, Seed: int64(100 + r)},
			VarianceOptions{Strategy: StrategyIS}, sigmaFactory)
		if err != nil {
			t.Fatal(err)
		}
		y, ok := res.WeightedYield(pass)
		if !ok {
			t.Fatal("weighted yield not ok")
		}
		ests[r] = y
		for _, m := range res.Samples {
			if m != nil && m[0] > bound {
				tailHits++
			}
		}
		if res.ESS <= 0 || res.ESS > float64(len(res.Samples)) {
			t.Errorf("replicate %d: implausible ESS %g", r, res.ESS)
		}
	}
	// The proposal must land far more samples in the failure region
	// than the nominal distribution would (expected naive: 1 per 1000).
	if tailHits < 10*reps {
		t.Errorf("only %d tail hits across %d×1000 IS samples; proposal not oversampling the tail", tailHits, reps)
	}
	var mean, ss float64
	for _, e := range ests {
		mean += e
	}
	mean /= reps
	for _, e := range ests {
		d := e - mean
		ss += d * d
	}
	stderr := math.Sqrt(ss/(reps-1)) / math.Sqrt(reps)
	if stderr == 0 {
		t.Fatal("IS replicates degenerate (zero spread)")
	}
	if diff := math.Abs(mean - trueYield); diff > 4.5*stderr {
		t.Errorf("IS yield estimate %g vs true %g: off by %.1f stderr (stderr %g)",
			mean, trueYield, diff/stderr, stderr)
	}
}

// TestISMomentsMatchBruteForce pairs the IS moment estimates against a
// large brute-force run, with tolerance scaled to the pooled standard
// errors of both estimators.
func TestISMomentsMatchBruteForce(t *testing.T) {
	brute, err := RunFactory(context.Background(),
		Options{Proc: proc(), Samples: 100000, Seed: 2}, sigmaFactory)
	if err != nil {
		t.Fatal(err)
	}
	is, err := RunVariance(context.Background(),
		Options{Proc: proc(), Samples: 8000, Seed: 3},
		VarianceOptions{Strategy: StrategyIS}, sigmaFactory)
	if err != nil {
		t.Fatal(err)
	}
	// stderr of a mean is σ/√n with n the effective sample count.
	pooled := math.Sqrt(1/float64(len(brute.Samples)) + 1/is.ESS)
	if diff := math.Abs(is.Stats[0].Mean - brute.Stats[0].Mean); diff > 5*pooled {
		t.Errorf("IS mean %g vs brute %g: off by %g (pooled stderr %g)",
			is.Stats[0].Mean, brute.Stats[0].Mean, diff, pooled)
	}
	// Sigma of a weighted standard-normal estimate: generous 5 % band.
	if s := is.Stats[0].Sigma; math.Abs(s-1) > 0.05 {
		t.Errorf("IS sigma %g, want ~1", s)
	}
	if is.ESS >= float64(len(is.Samples)) {
		t.Errorf("ESS %g not below sample count %d under a non-trivial proposal", is.ESS, len(is.Samples))
	}
}

// TestSurrogateFilterAudit checks the filter's safety contract: every
// sample the surrogate could not classify confidently is simulated, the
// stored value of every simulated sample is the evaluator's true value
// (no prediction ever overwrites a simulation), and the bookkeeping
// adds up.
func TestSurrogateFilterAudit(t *testing.T) {
	const samples = 600
	v := VarianceOptions{
		Strategy:          StrategySurrogate,
		TrainSamples:      48,
		CorrectionSamples: 16,
		Specs:             []SpecBound{{Col: 0, AtMost: false, Bound: 10}},
	}
	res, err := RunVariance(context.Background(),
		Options{Proc: proc(), Samples: samples, Seed: 21},
		v, func() Evaluator { return smoothEval })
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) != samples {
		t.Fatalf("decision log covers %d of %d samples", len(res.Decisions), samples)
	}
	simulated, predicted := 0, 0
	for _, d := range res.Decisions {
		if d.Uncertain && !d.Simulated {
			t.Fatalf("sample %d: uncertain but not simulated — unverified disagreement reached Stats", d.Sample)
		}
		if d.Simulated {
			simulated++
			// A simulated slot must hold the evaluator's exact value.
			s := proc().NewSample(21, d.Sample)
			want, _ := smoothEval(s)
			if got := res.Samples[d.Sample]; got == nil || got[0] != want[0] {
				t.Fatalf("sample %d: stored %v, evaluator returns %v", d.Sample, got, want)
			}
		} else {
			predicted++
		}
	}
	if simulated != res.FullEvals || predicted != res.Predicted {
		t.Errorf("bookkeeping: %d simulated / %d predicted vs FullEvals %d / Predicted %d",
			simulated, predicted, res.FullEvals, res.Predicted)
	}
	if res.Predicted == 0 {
		t.Error("filter predicted nothing on a smooth function; no evaluations saved")
	}
	if res.FullEvals >= samples {
		t.Error("filter simulated everything")
	}

	// The filtered estimate must agree with the full simulation.
	full, err := Run(context.Background(),
		Options{Proc: proc(), Samples: samples, Seed: 21}, smoothEval)
	if err != nil {
		t.Fatal(err)
	}
	// Tolerance is loose relative to the metric spread (~2.3): the GP
	// only approximates the u1·u3 cross term, and that residual is what
	// the uncertainty band and sigma add-back account for.
	if diff := math.Abs(res.Stats[0].Mean - full.Stats[0].Mean); diff > 0.15 {
		t.Errorf("filtered mean %g vs full %g", res.Stats[0].Mean, full.Stats[0].Mean)
	}
	if res.Stats[0].Sigma < full.Stats[0].Sigma*0.8 {
		t.Errorf("filtered sigma %g deflated vs full %g", res.Stats[0].Sigma, full.Stats[0].Sigma)
	}
}

// TestSurrogateParanoidKappaEqualsNaive: an (effectively) infinite
// classification margin forces every sample through the evaluator, and
// the result must then carry the exact sample set of a naive run.
func TestSurrogateParanoidKappaEqualsNaive(t *testing.T) {
	const samples = 200
	v := VarianceOptions{
		Strategy:     StrategySurrogate,
		TrainSamples: 32, CorrectionSamples: 8,
		Kappa: 1e12,
		Specs: []SpecBound{{Col: 0, AtMost: false, Bound: 10}},
	}
	res, err := RunVariance(context.Background(),
		Options{Proc: proc(), Samples: samples, Seed: 5},
		v, func() Evaluator { return smoothEval })
	if err != nil {
		t.Fatal(err)
	}
	if res.Predicted != 0 || res.FullEvals != samples {
		t.Fatalf("paranoid filter still predicted %d samples", res.Predicted)
	}
	naive, err := Run(context.Background(),
		Options{Proc: proc(), Samples: samples, Seed: 5}, smoothEval)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Samples, naive.Samples) {
		t.Error("all-simulated surrogate run's samples differ from naive")
	}
	if !reflect.DeepEqual(res.Stats, naive.Stats) {
		t.Errorf("all-simulated surrogate stats %v differ from naive %v", res.Stats, naive.Stats)
	}
}

// TestRunVarianceBatchMatchesStandalone checks batched variance runs
// deliver in point order and reproduce standalone results bit-exactly
// for any worker count.
func TestRunVarianceBatchMatchesStandalone(t *testing.T) {
	points := []PointSpec{{Seed: 31, Samples: 150}, {Seed: 32, Samples: 90}, {Seed: 33, Samples: 210}}
	v := VarianceOptions{Strategy: StrategyISSurrogate, TrainSamples: 24, CorrectionSamples: 8}
	factory := func() PointEvaluator {
		return func(point int, s *process.Sample) ([]float64, error) { return smoothEval(s) }
	}
	for _, workers := range []int{1, 4} {
		var order []int
		var got []*Result
		err := RunVarianceBatch(context.Background(),
			BatchOptions{Proc: proc(), Workers: workers}, v, points, factory,
			func(p int, res *Result, err error) error {
				if err != nil {
					return err
				}
				order = append(order, p)
				got = append(got, res)
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(order, []int{0, 1, 2}) {
			t.Fatalf("workers=%d: delivery order %v", workers, order)
		}
		for p := range points {
			want, err := RunVariance(context.Background(),
				Options{Proc: proc(), Samples: points[p].Samples, Seed: points[p].Seed},
				v, func() Evaluator { return smoothEval })
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got[p], want) {
				t.Errorf("workers=%d point %d: batch result differs from standalone", workers, p)
			}
		}
	}
}

func TestRunVarianceAllFailed(t *testing.T) {
	boom := func() Evaluator {
		return func(*process.Sample) ([]float64, error) { return nil, errors.New("boom") }
	}
	for _, strat := range []Strategy{StrategyIS, StrategySurrogate} {
		_, err := RunVariance(context.Background(),
			Options{Proc: proc(), Samples: 50, Seed: 1},
			VarianceOptions{Strategy: strat}, boom)
		if err == nil {
			t.Errorf("%v: all-fail run should error", strat)
		}
	}
}

func TestRunVarianceCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	slow := func() Evaluator {
		return func(s *process.Sample) ([]float64, error) {
			n++
			if n == 10 {
				cancel()
			}
			return sigmaEval(s)
		}
	}
	_, err := RunVariance(ctx,
		Options{Proc: proc(), Samples: 10000, Seed: 1, Workers: 1},
		VarianceOptions{Strategy: StrategyIS}, slow)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if n > 100 {
		t.Errorf("evaluated %d samples after cancellation", n)
	}
}

func TestVarianceOptionsValidation(t *testing.T) {
	opts := Options{Proc: proc(), Samples: 10, Seed: 1}
	bad := VarianceOptions{Strategy: StrategyIS,
		Proposal: &process.Proposal{Components: []process.ProposalComponent{{Weight: -1, Scale: 1}}}}
	if _, err := RunVariance(context.Background(), opts, bad, sigmaFactory); err == nil {
		t.Error("invalid proposal accepted")
	}
	negCol := VarianceOptions{Strategy: StrategySurrogate, Specs: []SpecBound{{Col: -1}}}
	if _, err := RunVariance(context.Background(), opts, negCol, sigmaFactory); err == nil {
		t.Error("negative spec column accepted")
	}
	wide := VarianceOptions{Strategy: StrategySurrogate, TrainSamples: 48, CorrectionSamples: 16,
		Specs: []SpecBound{{Col: 5, Bound: 1}}}
	if _, err := RunVariance(context.Background(),
		Options{Proc: proc(), Samples: 300, Seed: 1}, wide,
		func() Evaluator { return smoothEval }); err == nil {
		t.Error("out-of-range spec column accepted")
	}
}
