package montecarlo

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"analogyield/internal/process"
)

// peerDispatcher simulates remote replicas: it evaluates shards with
// the same per-(seed, index) sample derivation a peer would use, on its
// own process instance (a peer has its own).
type peerDispatcher struct {
	shards int
	proc   *process.Process
	eval   func(genes []float64, s *process.Sample) ([]float64, error)
	calls  atomic.Int64
}

func (d *peerDispatcher) Shards() int { return d.shards }

func (d *peerDispatcher) EvalShard(ctx context.Context, genes []float64, seed int64, lo, hi int) ([][]float64, error) {
	d.calls.Add(1)
	rows := make([][]float64, hi-lo)
	for i := lo; i < hi; i++ {
		m, err := d.eval(genes, d.proc.NewSample(seed, i))
		if err != nil {
			continue // nil row = failed sample
		}
		rows[i-lo] = m
	}
	return rows, nil
}

// failingDispatcher refuses every shard, forcing full local fallback.
type failingDispatcher struct{ shards int }

func (d failingDispatcher) Shards() int { return d.shards }
func (d failingDispatcher) EvalShard(context.Context, []float64, int64, int, int) ([][]float64, error) {
	return nil, errors.New("peer unreachable")
}

// flakyDispatcher serves every other shard call and fails the rest.
type flakyDispatcher struct {
	peerDispatcher
	n atomic.Int64
}

func (d *flakyDispatcher) EvalShard(ctx context.Context, genes []float64, seed int64, lo, hi int) ([][]float64, error) {
	if d.n.Add(1)%2 == 0 {
		return nil, errors.New("peer flaked")
	}
	return d.peerDispatcher.EvalShard(ctx, genes, seed, lo, hi)
}

// genesEval routes the shared batchEval through a genes vector whose
// first element is the point index, so local and remote evaluation see
// identical inputs per point.
func genesEval(genes []float64, s *process.Sample) ([]float64, error) {
	sh := s.DeviceShift(process.NMOS, 10e-6, 10e-6)
	if sh.DVth > 0.8e-3 {
		return nil, errors.New("sample failed") // deterministic per sample
	}
	return []float64{genes[0] + sh.DVth, 1 - sh.DVth}, nil
}

func shardGenes(n int) [][]float64 {
	out := make([][]float64, n)
	for p := range out {
		out[p] = []float64{float64(p)}
	}
	return out
}

// referenceResults computes the batch through plain RunBatch — the
// single-node truth every shard layout must reproduce bit for bit.
func referenceResults(t *testing.T, specs []PointSpec, genes [][]float64) []*Result {
	t.Helper()
	var out []*Result
	err := RunBatch(context.Background(),
		BatchOptions{Proc: proc(), Workers: 1, Metrics: []string{"a", "b"}},
		specs,
		func() PointEvaluator {
			return func(point int, s *process.Sample) ([]float64, error) { return genesEval(genes[point], s) }
		},
		func(point int, res *Result, err error) error {
			if err != nil {
				return err
			}
			out = append(out, res)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func runDistributed(t *testing.T, specs []PointSpec, genes [][]float64, disp ShardDispatcher, workers, chunk int) ([]*Result, []int) {
	t.Helper()
	var got []*Result
	var order []int
	err := RunBatchDistributed(context.Background(),
		BatchOptions{Proc: proc(), Workers: workers, ChunkSize: chunk, Metrics: []string{"a", "b"}},
		specs, genes,
		func() PointEvaluator {
			return func(point int, s *process.Sample) ([]float64, error) { return genesEval(genes[point], s) }
		},
		disp,
		func(point int, res *Result, err error) error {
			if err != nil {
				return err
			}
			order = append(order, point)
			got = append(got, res)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return got, order
}

// TestRunBatchDistributedBitIdentical pins the cluster correctness
// contract: for ANY shard layout (0/1/2/3 remote shards — i.e. 1, 2, 3
// or 4 replicas' worth of splitting), any worker count and any chunk
// size, every point's Result is bit-identical to the single-node run.
func TestRunBatchDistributedBitIdentical(t *testing.T) {
	specs := batchSpecs()
	genes := shardGenes(len(specs))
	want := referenceResults(t, specs, genes)
	for _, shards := range []int{0, 1, 2, 3} {
		for _, workers := range []int{1, 4} {
			for _, chunk := range []int{5, 32} {
				var disp ShardDispatcher
				if shards > 0 {
					disp = &peerDispatcher{shards: shards, proc: proc(), eval: genesEval}
				}
				got, order := runDistributed(t, specs, genes, disp, workers, chunk)
				if wantOrder := []int{0, 1, 2, 3}; !reflect.DeepEqual(order, wantOrder) {
					t.Fatalf("shards=%d workers=%d chunk=%d: delivery order %v", shards, workers, chunk, order)
				}
				for p := range specs {
					if !reflect.DeepEqual(got[p], want[p]) {
						t.Errorf("shards=%d workers=%d chunk=%d: point %d differs from single-node run (failed %d vs %d)",
							shards, workers, chunk, p, got[p].Failed, want[p].Failed)
					}
				}
			}
		}
	}
}

// TestRunBatchDistributedRemoteActuallyUsed guards against a scheduler
// that silently evaluates everything locally (which would also pass the
// bit-identity test).
func TestRunBatchDistributedRemoteActuallyUsed(t *testing.T) {
	specs := batchSpecs()
	genes := shardGenes(len(specs))
	disp := &peerDispatcher{shards: 2, proc: proc(), eval: genesEval}
	runDistributed(t, specs, genes, disp, 2, 16)
	if disp.calls.Load() == 0 {
		t.Fatal("dispatcher never called")
	}
}

// TestRunBatchDistributedFallback pins degraded-mode correctness: with
// every peer down (or flaking), results still match the single-node run
// bit for bit — the failed shards are re-evaluated locally.
func TestRunBatchDistributedFallback(t *testing.T) {
	specs := batchSpecs()
	genes := shardGenes(len(specs))
	want := referenceResults(t, specs, genes)

	dispatchers := map[string]ShardDispatcher{
		"all-peers-down": failingDispatcher{shards: 3},
		"flaky-peers":    &flakyDispatcher{peerDispatcher: peerDispatcher{shards: 2, proc: proc(), eval: genesEval}},
	}
	for name, disp := range dispatchers {
		t.Run(name, func(t *testing.T) {
			got, _ := runDistributed(t, specs, genes, disp, 2, 16)
			for p := range specs {
				if !reflect.DeepEqual(got[p], want[p]) {
					t.Errorf("point %d differs from single-node run", p)
				}
			}
		})
	}
}

// TestRunBatchDistributedCancel mirrors RunBatch's cancellation
// semantics: the scheduler unwinds promptly and reports ctx.Err().
func TestRunBatchDistributedCancel(t *testing.T) {
	specs := []PointSpec{{Seed: 1, Samples: 400}, {Seed: 2, Samples: 400}, {Seed: 3, Samples: 400}}
	genes := shardGenes(len(specs))
	ctx, cancel := context.WithCancel(context.Background())
	disp := &peerDispatcher{shards: 2, proc: proc(), eval: genesEval}
	delivered := 0
	err := RunBatchDistributed(ctx,
		BatchOptions{Proc: proc(), Workers: 2, ChunkSize: 8, Metrics: []string{"a", "b"}},
		specs, genes,
		func() PointEvaluator {
			return func(point int, s *process.Sample) ([]float64, error) {
				cancel() // first evaluation pulls the plug
				return genesEval(genes[point], s)
			}
		},
		disp,
		func(point int, res *Result, err error) error {
			delivered++
			return nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestShardRanges(t *testing.T) {
	cases := []struct {
		n, parts int
		want     [][2]int
	}{
		{10, 1, [][2]int{{0, 10}}},
		{10, 2, [][2]int{{0, 5}, {5, 10}}},
		{10, 3, [][2]int{{0, 4}, {4, 7}, {7, 10}}},
		{3, 5, [][2]int{{0, 1}, {1, 2}, {2, 3}}},
		{200, 4, [][2]int{{0, 50}, {50, 100}, {100, 150}, {150, 200}}},
	}
	for _, c := range cases {
		got := shardRanges(c.n, c.parts)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("shardRanges(%d,%d) = %v, want %v", c.n, c.parts, got, c.want)
		}
		// Ranges must tile [0, n) exactly.
		lo := 0
		for _, r := range got {
			if r[0] != lo {
				t.Errorf("shardRanges(%d,%d): gap at %d", c.n, c.parts, lo)
			}
			lo = r[1]
		}
		if lo != c.n {
			t.Errorf("shardRanges(%d,%d) covers [0,%d), want [0,%d)", c.n, c.parts, lo, c.n)
		}
	}
}
