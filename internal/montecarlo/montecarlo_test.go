package montecarlo

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"

	"analogyield/internal/process"
)

func proc() *process.Process { return process.C35() }

// vthEval returns the threshold shift of one reference device as the
// single metric — its statistics are known analytically.
func vthEval(s *process.Sample) ([]float64, error) {
	sh := s.DeviceShift(process.NMOS, 10e-6, 10e-6)
	return []float64{1 + sh.DVth}, nil
}

func TestRunBasicStats(t *testing.T) {
	res, err := Run(context.Background(), Options{Proc: proc(), Samples: 2000, Seed: 1, Metrics: []string{"v"}}, vthEval)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Errorf("Failed = %d", res.Failed)
	}
	st := res.Stats[0]
	if st.Name != "v" {
		t.Errorf("metric name = %q", st.Name)
	}
	if math.Abs(st.Mean-1) > 0.002 {
		t.Errorf("mean = %g, want ~1", st.Mean)
	}
	// Sigma should be close to the global SigmaVth (mismatch is small at
	// 100 µm² area): 0.015 V.
	if st.Sigma < 0.012 || st.Sigma > 0.018 {
		t.Errorf("sigma = %g, want ~0.015", st.Sigma)
	}
	wantDelta := 100 * 3 * st.Sigma / st.Mean
	if math.Abs(st.DeltaPct-wantDelta) > 1e-9 {
		t.Errorf("DeltaPct = %g, want %g", st.DeltaPct, wantDelta)
	}
	if st.Min >= st.Mean || st.Max <= st.Mean {
		t.Error("min/max do not bracket the mean")
	}
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	opts := func(w int) Options {
		return Options{Proc: proc(), Samples: 400, Seed: 42, Workers: w}
	}
	a, err := Run(context.Background(), opts(1), vthEval)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), opts(8), vthEval)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Samples {
		if a.Samples[i][0] != b.Samples[i][0] {
			t.Fatalf("sample %d differs between 1 and 8 workers", i)
		}
	}
}

func TestRunSeedChangesSamples(t *testing.T) {
	a, _ := Run(context.Background(), Options{Proc: proc(), Samples: 50, Seed: 1}, vthEval)
	b, _ := Run(context.Background(), Options{Proc: proc(), Samples: 50, Seed: 2}, vthEval)
	same := 0
	for i := range a.Samples {
		if a.Samples[i][0] == b.Samples[i][0] {
			same++
		}
	}
	if same == len(a.Samples) {
		t.Error("different seeds gave identical sample sets")
	}
}

func TestRunPartialFailures(t *testing.T) {
	n := 0
	eval := func(s *process.Sample) ([]float64, error) {
		n++
		sh := s.DeviceShift(process.NMOS, 1e-6, 1e-6)
		if sh.DVth > 0.01 {
			return nil, errors.New("synthetic convergence failure")
		}
		return []float64{sh.DVth}, nil
	}
	res, err := Run(context.Background(), Options{Proc: proc(), Samples: 300, Seed: 3, Workers: 1}, eval)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed == 0 {
		t.Skip("no synthetic failures at this seed (unexpected but harmless)")
	}
	// Stats computed only over successes.
	if res.Stats[0].Max > 0.01 {
		t.Errorf("failed samples leaked into stats: max = %g", res.Stats[0].Max)
	}
	// Yield counts failures as failing.
	y, ok := res.Yield(func(m []float64) bool { return true })
	if !ok {
		t.Fatal("yield not ok despite successful samples")
	}
	if y >= 1 {
		t.Errorf("yield = %g, want < 1 with failures present", y)
	}
}

func TestRunAllFail(t *testing.T) {
	eval := func(*process.Sample) ([]float64, error) { return nil, errors.New("boom") }
	if _, err := Run(context.Background(), Options{Proc: proc(), Samples: 10, Seed: 1}, eval); err == nil {
		t.Fatal("all-fail run should error")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Options{Proc: nil, Samples: 10}, vthEval); err == nil {
		t.Error("nil process accepted")
	}
	if _, err := Run(context.Background(), Options{Proc: proc(), Samples: 0}, vthEval); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := Run(context.Background(), Options{Proc: proc(), Samples: 5}, nil); err == nil {
		t.Error("nil evaluator accepted")
	}
}

func TestYield(t *testing.T) {
	res := &Result{Samples: [][]float64{{1}, {2}, {3}, nil}}
	y, ok := res.Yield(func(m []float64) bool { return m[0] >= 2 })
	if !ok {
		t.Fatal("yield not ok despite successful samples")
	}
	if y != 0.5 {
		t.Errorf("yield = %g, want 0.5 (2 of 4)", y)
	}
	empty := &Result{}
	if _, ok := empty.Yield(func([]float64) bool { return true }); ok {
		t.Error("empty result must report ok=false, not a silent zero yield")
	}
	allFailed := &Result{Samples: [][]float64{nil, nil}, Failed: 2}
	if _, ok := allFailed.Yield(func([]float64) bool { return true }); ok {
		t.Error("all-failed result must report ok=false")
	}
}

func TestWeightedYield(t *testing.T) {
	res := &Result{
		Samples: [][]float64{{1}, {2}, {3}, nil},
		Weights: []float64{1, 2, 3, 4},
	}
	// Passing samples {2}, {3} carry weight 5 of 10 total (the failed
	// sample's weight 4 stays in the denominator).
	y, ok := res.WeightedYield(func(m []float64) bool { return m[0] >= 2 })
	if !ok || y != 0.5 {
		t.Errorf("weighted yield = %g ok=%v, want 0.5 true", y, ok)
	}
	// Without weights it must agree with Yield exactly.
	res.Weights = nil
	yw, _ := res.WeightedYield(func(m []float64) bool { return m[0] >= 2 })
	yu, _ := res.Yield(func(m []float64) bool { return m[0] >= 2 })
	if yw != yu {
		t.Errorf("unweighted WeightedYield %g != Yield %g", yw, yu)
	}
}

func TestMetricNamesDefault(t *testing.T) {
	res, err := Run(context.Background(), Options{Proc: proc(), Samples: 10, Seed: 1}, vthEval)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats[0].Name != "metric0" {
		t.Errorf("default metric name = %q", res.Stats[0].Name)
	}
}

// TestRunFactoryMatchesRun checks per-worker evaluators produce results
// identical to the shared-evaluator path, and that each worker receives
// its own evaluator instance.
func TestRunFactoryMatchesRun(t *testing.T) {
	shared, err := Run(context.Background(), Options{Proc: proc(), Samples: 200, Seed: 3, Workers: 4}, vthEval)
	if err != nil {
		t.Fatal(err)
	}
	var evaluators atomic.Int64
	factored, err := RunFactory(context.Background(), Options{Proc: proc(), Samples: 200, Seed: 3, Workers: 4},
		func() Evaluator {
			evaluators.Add(1)
			scratch := make([]float64, 1) // stands in for a solver workspace
			return func(s *process.Sample) ([]float64, error) {
				m, err := vthEval(s)
				if err != nil {
					return nil, err
				}
				scratch[0] = m[0]
				return []float64{scratch[0]}, nil
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if got := evaluators.Load(); got != 4 {
		t.Errorf("factory called %d times, want once per worker (4)", got)
	}
	for i := range shared.Samples {
		if shared.Samples[i][0] != factored.Samples[i][0] {
			t.Fatalf("sample %d differs between Run and RunFactory", i)
		}
	}
}

// TestRunFactoryValidation checks nil factories and nil evaluators are
// handled without deadlock.
func TestRunFactoryValidation(t *testing.T) {
	if _, err := RunFactory(context.Background(), Options{Proc: proc(), Samples: 5}, nil); err == nil {
		t.Error("nil factory accepted")
	}
	// A factory returning nil evaluators must fail cleanly, not hang.
	if _, err := RunFactory(context.Background(), Options{Proc: proc(), Samples: 5, Workers: 2},
		func() Evaluator { return nil }); err == nil {
		t.Error("all-nil evaluators should error (every sample failed)")
	}
}
