package montecarlo

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"analogyield/internal/process"
)

// batchSpecs builds a small batch with distinct seeds and sizes.
func batchSpecs() []PointSpec {
	return []PointSpec{
		{Seed: 100, Samples: 37},
		{Seed: 200, Samples: 64},
		{Seed: 300, Samples: 5},
		{Seed: 400, Samples: 90},
	}
}

// batchEval is vthEval shifted per point, so mixing up point indices or
// seeds shows up as a value mismatch.
func batchEval(point int, s *process.Sample) ([]float64, error) {
	sh := s.DeviceShift(process.NMOS, 10e-6, 10e-6)
	return []float64{float64(point) + sh.DVth, 1 - sh.DVth}, nil
}

// runFactoryReference computes every point independently via RunFactory
// — the semantics RunBatch must reproduce bit for bit.
func runFactoryReference(t *testing.T, specs []PointSpec) []*Result {
	t.Helper()
	out := make([]*Result, len(specs))
	for p, spec := range specs {
		pp := p
		res, err := RunFactory(context.Background(),
			Options{Proc: proc(), Samples: spec.Samples, Seed: spec.Seed, Workers: 1, Metrics: []string{"a", "b"}},
			func() Evaluator {
				return func(s *process.Sample) ([]float64, error) { return batchEval(pp, s) }
			})
		if err != nil {
			t.Fatal(err)
		}
		out[p] = res
	}
	return out
}

func TestRunBatchMatchesRunFactory(t *testing.T) {
	specs := batchSpecs()
	want := runFactoryReference(t, specs)
	for _, workers := range []int{1, 2, 8} {
		for _, chunk := range []int{1, 7, 32, 1000} {
			var got []*Result
			var order []int
			err := RunBatch(context.Background(),
				BatchOptions{Proc: proc(), Workers: workers, ChunkSize: chunk, Metrics: []string{"a", "b"}},
				specs,
				func() PointEvaluator { return batchEval },
				func(point int, res *Result, err error) error {
					if err != nil {
						return err
					}
					order = append(order, point)
					got = append(got, res)
					return nil
				})
			if err != nil {
				t.Fatalf("workers=%d chunk=%d: %v", workers, chunk, err)
			}
			if wantOrder := []int{0, 1, 2, 3}; !reflect.DeepEqual(order, wantOrder) {
				t.Fatalf("workers=%d chunk=%d: delivery order %v, want %v", workers, chunk, order, wantOrder)
			}
			for p := range specs {
				if !reflect.DeepEqual(got[p], want[p]) {
					t.Errorf("workers=%d chunk=%d: point %d differs from RunFactory", workers, chunk, p)
				}
			}
		}
	}
}

func TestRunBatchFailedPoint(t *testing.T) {
	specs := []PointSpec{{Seed: 1, Samples: 10}, {Seed: 2, Samples: 10}, {Seed: 3, Samples: 10}}
	boom := errors.New("solver diverged")
	var pointErrs []error
	var okPoints []int
	err := RunBatch(context.Background(),
		BatchOptions{Proc: proc(), Workers: 4, ChunkSize: 3},
		specs,
		func() PointEvaluator {
			return func(point int, s *process.Sample) ([]float64, error) {
				if point == 1 {
					return nil, boom // every sample of point 1 fails
				}
				return batchEval(point, s)
			}
		},
		func(point int, res *Result, err error) error {
			if err != nil {
				pointErrs = append(pointErrs, err)
				return nil // caller chooses to drop, not abort
			}
			okPoints = append(okPoints, point)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(pointErrs) != 1 {
		t.Fatalf("got %d point errors, want 1", len(pointErrs))
	}
	if want := "montecarlo: every sample failed (10 of 10)"; pointErrs[0].Error() != want {
		t.Errorf("point error = %q, want %q", pointErrs[0], want)
	}
	if !reflect.DeepEqual(okPoints, []int{0, 2}) {
		t.Errorf("successful points = %v, want [0 2]", okPoints)
	}
}

func TestRunBatchDoneErrorAborts(t *testing.T) {
	specs := batchSpecs()
	abort := errors.New("stop here")
	calls := 0
	err := RunBatch(context.Background(),
		BatchOptions{Proc: proc(), Workers: 2, ChunkSize: 8},
		specs,
		func() PointEvaluator { return batchEval },
		func(point int, res *Result, err error) error {
			calls++
			if point == 1 {
				return abort
			}
			return nil
		})
	if !errors.Is(err, abort) {
		t.Fatalf("err = %v, want %v", err, abort)
	}
	if calls != 2 {
		t.Errorf("done called %d times, want 2 (points 0 and 1)", calls)
	}
}

// TestRunBatchCancellation cancels mid-batch and checks that the
// delivered prefix is in order and bit-identical to an uncancelled run.
func TestRunBatchCancellation(t *testing.T) {
	specs := make([]PointSpec, 50)
	for p := range specs {
		specs[p] = PointSpec{Seed: int64(p + 1), Samples: 40}
	}
	want := runFactoryReference(t, specs)

	ctx, cancel := context.WithCancel(context.Background())
	var evals atomic.Int64
	var deliveredPoints []int
	var delivered []*Result
	err := RunBatch(ctx,
		BatchOptions{Proc: proc(), Workers: 2, ChunkSize: 4, Metrics: []string{"a", "b"}},
		specs,
		func() PointEvaluator {
			return func(point int, s *process.Sample) ([]float64, error) {
				if evals.Add(1) == 300 {
					cancel() // cancel mid-batch, from inside a worker
				}
				return batchEval(point, s)
			}
		},
		func(point int, res *Result, err error) error {
			if err != nil {
				return err
			}
			deliveredPoints = append(deliveredPoints, point)
			delivered = append(delivered, res)
			return nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(deliveredPoints) == len(specs) {
		t.Fatal("cancellation delivered the whole batch")
	}
	for i, p := range deliveredPoints {
		if p != i {
			t.Fatalf("delivered prefix %v is not 0..k", deliveredPoints)
		}
		if !reflect.DeepEqual(delivered[i], want[p]) {
			t.Errorf("delivered point %d differs from uncancelled reference", p)
		}
	}
}

func TestRunBatchValidation(t *testing.T) {
	factory := func() PointEvaluator { return batchEval }
	done := func(int, *Result, error) error { return nil }
	cases := []struct {
		name string
		err  error
	}{
		{"nil process", RunBatch(context.Background(), BatchOptions{}, []PointSpec{{Seed: 1, Samples: 1}}, factory, done)},
		{"nil factory", RunBatch(context.Background(), BatchOptions{Proc: proc()}, []PointSpec{{Seed: 1, Samples: 1}}, nil, done)},
		{"nil done", RunBatch(context.Background(), BatchOptions{Proc: proc()}, []PointSpec{{Seed: 1, Samples: 1}}, factory, nil)},
		{"bad samples", RunBatch(context.Background(), BatchOptions{Proc: proc()}, []PointSpec{{Seed: 1, Samples: 0}}, factory, done)},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if err := RunBatch(context.Background(), BatchOptions{Proc: proc()}, nil, factory, done); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}

// gaugeRecorder checks that every gauge returns to zero once the batch
// is over (all deltas pair up).
type gaugeRecorder struct {
	busy, queue, inflight atomic.Int64
}

func (g *gaugeRecorder) AddBusyWorkers(d int64)    { g.busy.Add(d) }
func (g *gaugeRecorder) AddQueueDepth(d int64)     { g.queue.Add(d) }
func (g *gaugeRecorder) AddPointsInFlight(d int64) { g.inflight.Add(d) }

func TestRunBatchGaugesSettle(t *testing.T) {
	var g gaugeRecorder
	err := RunBatch(context.Background(),
		BatchOptions{Proc: proc(), Workers: 3, ChunkSize: 5, Gauges: &g},
		batchSpecs(),
		func() PointEvaluator { return batchEval },
		func(int, *Result, error) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]int64{
		"busy_workers": g.busy.Load(), "queue_depth": g.queue.Load(), "points_in_flight": g.inflight.Load(),
	} {
		if v != 0 {
			t.Errorf("gauge %s = %d after completion, want 0", name, v)
		}
	}
}

func TestRunBatchGaugesSettleOnCancel(t *testing.T) {
	var g gaugeRecorder
	ctx, cancel := context.WithCancel(context.Background())
	var evals atomic.Int64
	err := RunBatch(ctx,
		BatchOptions{Proc: proc(), Workers: 2, ChunkSize: 2, Gauges: &g},
		batchSpecs(),
		func() PointEvaluator {
			return func(point int, s *process.Sample) ([]float64, error) {
				if evals.Add(1) == 20 {
					cancel()
				}
				return batchEval(point, s)
			}
		},
		func(int, *Result, error) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for name, v := range map[string]int64{
		"busy_workers": g.busy.Load(), "queue_depth": g.queue.Load(), "points_in_flight": g.inflight.Load(),
	} {
		if v != 0 {
			t.Errorf("gauge %s = %d after cancel, want 0", name, v)
		}
	}
}

func BenchmarkRunBatch(b *testing.B) {
	specs := make([]PointSpec, 16)
	for p := range specs {
		specs[p] = PointSpec{Seed: int64(p), Samples: 64}
	}
	opts := BatchOptions{Proc: proc(), Workers: 4, ChunkSize: 16}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := RunBatch(context.Background(), opts, specs,
			func() PointEvaluator { return batchEval },
			func(int, *Result, error) error { return nil })
		if err != nil {
			b.Fatal(err)
		}
	}
}
