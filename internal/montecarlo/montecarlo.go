// Package montecarlo runs statistical (process + mismatch) sampling of a
// circuit evaluation and reduces the samples to the per-performance
// variation statistics the paper's variation model stores: mean, sigma,
// and the ±3σ half-range Δ% used by the guard-banding arithmetic.
//
// Sampling is deterministic: sample i always draws process sample
// (seed, i), so results are identical regardless of worker count.
package montecarlo

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"analogyield/internal/process"
)

// Evaluator computes the performance metric vector of one process
// sample. Implementations must be safe for concurrent use (each call
// receives its own Sample).
type Evaluator func(s *process.Sample) ([]float64, error)

// Factory supplies each worker goroutine with its own Evaluator. The
// returned Evaluator is called from a single goroutine only, so it may
// own reusable scratch state — typically a circuit-solver workspace that
// makes every Monte Carlo sample after the first allocation-free.
type Factory func() Evaluator

// Options configures a Monte Carlo run.
type Options struct {
	Proc    *process.Process // required
	Samples int              // number of MC samples (required, > 0)
	Seed    int64            // RNG stream identifier
	Workers int              // parallel workers (default: GOMAXPROCS)
	// Metrics optionally names the metric columns for reporting.
	Metrics []string
}

// Stats summarises one metric across the samples that evaluated
// successfully.
type Stats struct {
	Name     string
	Mean     float64
	Sigma    float64 // sample standard deviation
	Min, Max float64
	// DeltaPct is the paper's variation figure: 100·3σ/|mean|, the ±3σ
	// half-range as a percentage of the mean. Table 2's ΔGain/ΔPM
	// columns and Table 3's guard-band arithmetic use this quantity.
	DeltaPct float64
}

// Result is the outcome of a run.
type Result struct {
	// Samples holds one metric vector per successful sample, indexed by
	// sample number; failed samples are nil. Under a surrogate strategy
	// a vector may be the filter's prediction rather than a simulation —
	// Decisions records which.
	Samples [][]float64
	Failed  int
	Stats   []Stats

	// Weights holds the per-sample importance weights p/q of an
	// importance-sampled run; nil for naive sampling (all weights 1).
	Weights []float64
	// ESS is the effective sample size of the successful samples:
	// (Σw)²/Σw², which degrades from the success count as the weights
	// spread. Low ESS means the weighted estimates are noisier than the
	// raw sample count suggests.
	ESS float64
	// FullEvals counts circuit evaluations actually run; Predicted
	// counts samples answered by the surrogate filter instead. For
	// naive and plain IS runs FullEvals equals len(Samples) and
	// Predicted is 0.
	FullEvals int
	Predicted int
	// Decisions is the surrogate filter's per-sample audit log (nil for
	// strategies without the filter), in sample order.
	Decisions []FilterDecision
}

// Run executes the Monte Carlo analysis with a single shared Evaluator
// (which must be safe for concurrent use).
func Run(ctx context.Context, opts Options, eval Evaluator) (*Result, error) {
	if eval == nil {
		return nil, fmt.Errorf("montecarlo: nil evaluator")
	}
	return RunFactory(ctx, opts, func() Evaluator { return eval })
}

// RunFactory executes the Monte Carlo analysis with per-worker
// evaluators: each worker goroutine calls factory once and evaluates all
// its samples through the result, so evaluators can carry long-lived
// solver workspaces. Sampling stays deterministic — sample i always
// draws process sample (seed, i) regardless of worker count.
//
// Cancellation is cooperative with one-sample granularity: when ctx is
// cancelled mid-run, sample dispatch stops, in-flight samples finish,
// and RunFactory returns (nil, ctx.Err()).
func RunFactory(ctx context.Context, opts Options, factory Factory) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Proc == nil {
		return nil, fmt.Errorf("montecarlo: nil process")
	}
	if opts.Samples <= 0 {
		return nil, fmt.Errorf("montecarlo: Samples must be positive, got %d", opts.Samples)
	}
	if factory == nil {
		return nil, fmt.Errorf("montecarlo: nil evaluator factory")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > opts.Samples {
		workers = opts.Samples
	}

	res := &Result{Samples: make([][]float64, opts.Samples)}
	var wg sync.WaitGroup
	idx := make(chan int)
	var mu sync.Mutex
	failed := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eval := factory()
			for i := range idx {
				if eval == nil {
					mu.Lock()
					failed++
					mu.Unlock()
					continue
				}
				s := opts.Proc.NewSample(opts.Seed, i)
				m, err := eval(s)
				if err != nil {
					mu.Lock()
					failed++
					mu.Unlock()
					continue
				}
				res.Samples[i] = m
			}
		}()
	}
feed:
	for i := 0; i < opts.Samples; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res.Failed = failed
	if err := finishStats(res, opts.Metrics); err != nil {
		return nil, err
	}
	return res, nil
}

// welford accumulates streaming mean, variance, min and max in one
// pass (Welford's update), so the reduction needs neither a second walk
// over the samples nor a per-metric copy of them.
type welford struct {
	n        float64
	mean, m2 float64
	min, max float64
}

func (w *welford) add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	d := x - w.mean
	w.mean += d / w.n
	w.m2 += d * (x - w.mean)
}

func (w *welford) stats() Stats {
	sigma := 0.0
	if w.n > 1 {
		sigma = math.Sqrt(w.m2 / (w.n - 1))
	}
	delta := 0.0
	if w.mean != 0 {
		delta = 100 * 3 * sigma / math.Abs(w.mean)
	}
	return Stats{Mean: w.mean, Sigma: sigma, Min: w.min, Max: w.max, DeltaPct: delta}
}

// finishStats reduces res.Samples to per-metric statistics in res.Stats
// in a single pass, and fills the naive-run values of the estimator
// diagnostics (ESS = success count, FullEvals = sample count). It is
// the shared tail of RunFactory and RunBatch, so a batched point
// reports bit-identical statistics to a standalone run. An all-failed
// result is an error.
func finishStats(res *Result, metrics []string) error {
	var width int
	for _, s := range res.Samples {
		if s != nil {
			width = len(s)
			break
		}
	}
	if width == 0 {
		return fmt.Errorf("montecarlo: every sample failed (%d of %d)", res.Failed, len(res.Samples))
	}
	acc := make([]welford, width)
	for _, s := range res.Samples {
		if s == nil {
			continue
		}
		for k := range acc {
			acc[k].add(s[k])
		}
	}
	res.Stats = make([]Stats, width)
	for k := range acc {
		st := acc[k].stats()
		st.Name = metricName(metrics, k)
		res.Stats[k] = st
	}
	res.ESS = acc[0].n
	res.FullEvals = len(res.Samples)
	return nil
}

func metricName(metrics []string, k int) string {
	if k < len(metrics) {
		return metrics[k]
	}
	return fmt.Sprintf("metric%d", k)
}

// Yield returns the fraction of successful samples for which pass
// returns true. Failed samples count as failures, matching the
// pessimistic convention of production yield analysis. ok is false when
// no sample evaluated successfully — the run carries no yield
// information and the 0 value must not be mistaken for a measured zero
// yield. For importance-sampled results use WeightedYield.
func (r *Result) Yield(pass func(metrics []float64) bool) (yield float64, ok bool) {
	succeeded := 0
	passed := 0
	for _, s := range r.Samples {
		if s == nil {
			continue
		}
		succeeded++
		if pass(s) {
			passed++
		}
	}
	if succeeded == 0 {
		return 0, false
	}
	return float64(passed) / float64(len(r.Samples)), true
}

// WeightedYield is the importance-sampling analogue of Yield: the
// self-normalised estimate Σw·pass / Σw. Failed samples keep their
// weight in the denominator (the pessimistic convention of Yield). On a
// result without weights it reduces exactly to Yield. ok is false when
// no sample evaluated successfully or the total weight vanishes.
func (r *Result) WeightedYield(pass func(metrics []float64) bool) (yield float64, ok bool) {
	if r.Weights == nil {
		return r.Yield(pass)
	}
	succeeded := 0
	var sw, swPass float64
	for i, s := range r.Samples {
		sw += r.Weights[i]
		if s == nil {
			continue
		}
		succeeded++
		if pass(s) {
			swPass += r.Weights[i]
		}
	}
	if succeeded == 0 || sw <= 0 {
		return 0, false
	}
	return swPass / sw, true
}
