// Package montecarlo runs statistical (process + mismatch) sampling of a
// circuit evaluation and reduces the samples to the per-performance
// variation statistics the paper's variation model stores: mean, sigma,
// and the ±3σ half-range Δ% used by the guard-banding arithmetic.
//
// Sampling is deterministic: sample i always draws process sample
// (seed, i), so results are identical regardless of worker count.
package montecarlo

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"analogyield/internal/process"
)

// Evaluator computes the performance metric vector of one process
// sample. Implementations must be safe for concurrent use (each call
// receives its own Sample).
type Evaluator func(s *process.Sample) ([]float64, error)

// Factory supplies each worker goroutine with its own Evaluator. The
// returned Evaluator is called from a single goroutine only, so it may
// own reusable scratch state — typically a circuit-solver workspace that
// makes every Monte Carlo sample after the first allocation-free.
type Factory func() Evaluator

// Options configures a Monte Carlo run.
type Options struct {
	Proc    *process.Process // required
	Samples int              // number of MC samples (required, > 0)
	Seed    int64            // RNG stream identifier
	Workers int              // parallel workers (default: GOMAXPROCS)
	// Metrics optionally names the metric columns for reporting.
	Metrics []string
}

// Stats summarises one metric across the samples that evaluated
// successfully.
type Stats struct {
	Name     string
	Mean     float64
	Sigma    float64 // sample standard deviation
	Min, Max float64
	// DeltaPct is the paper's variation figure: 100·3σ/|mean|, the ±3σ
	// half-range as a percentage of the mean. Table 2's ΔGain/ΔPM
	// columns and Table 3's guard-band arithmetic use this quantity.
	DeltaPct float64
}

// Result is the outcome of a run.
type Result struct {
	// Samples holds one metric vector per successful sample, indexed by
	// sample number; failed samples are nil.
	Samples [][]float64
	Failed  int
	Stats   []Stats
}

// Run executes the Monte Carlo analysis with a single shared Evaluator
// (which must be safe for concurrent use).
func Run(ctx context.Context, opts Options, eval Evaluator) (*Result, error) {
	if eval == nil {
		return nil, fmt.Errorf("montecarlo: nil evaluator")
	}
	return RunFactory(ctx, opts, func() Evaluator { return eval })
}

// RunFactory executes the Monte Carlo analysis with per-worker
// evaluators: each worker goroutine calls factory once and evaluates all
// its samples through the result, so evaluators can carry long-lived
// solver workspaces. Sampling stays deterministic — sample i always
// draws process sample (seed, i) regardless of worker count.
//
// Cancellation is cooperative with one-sample granularity: when ctx is
// cancelled mid-run, sample dispatch stops, in-flight samples finish,
// and RunFactory returns (nil, ctx.Err()).
func RunFactory(ctx context.Context, opts Options, factory Factory) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Proc == nil {
		return nil, fmt.Errorf("montecarlo: nil process")
	}
	if opts.Samples <= 0 {
		return nil, fmt.Errorf("montecarlo: Samples must be positive, got %d", opts.Samples)
	}
	if factory == nil {
		return nil, fmt.Errorf("montecarlo: nil evaluator factory")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > opts.Samples {
		workers = opts.Samples
	}

	res := &Result{Samples: make([][]float64, opts.Samples)}
	var wg sync.WaitGroup
	idx := make(chan int)
	var mu sync.Mutex
	failed := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eval := factory()
			for i := range idx {
				if eval == nil {
					mu.Lock()
					failed++
					mu.Unlock()
					continue
				}
				s := opts.Proc.NewSample(opts.Seed, i)
				m, err := eval(s)
				if err != nil {
					mu.Lock()
					failed++
					mu.Unlock()
					continue
				}
				res.Samples[i] = m
			}
		}()
	}
feed:
	for i := 0; i < opts.Samples; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res.Failed = failed
	if err := finishStats(res, opts.Metrics); err != nil {
		return nil, err
	}
	return res, nil
}

// finishStats reduces res.Samples to per-metric statistics in res.Stats.
// It is the shared tail of RunFactory and RunBatch, so a batched point
// reports bit-identical statistics to a standalone run. An all-failed
// result is an error.
func finishStats(res *Result, metrics []string) error {
	var width int
	for _, s := range res.Samples {
		if s != nil {
			width = len(s)
			break
		}
	}
	if width == 0 {
		return fmt.Errorf("montecarlo: every sample failed (%d of %d)", res.Failed, len(res.Samples))
	}
	res.Stats = make([]Stats, width)
	for k := 0; k < width; k++ {
		var xs []float64
		for _, s := range res.Samples {
			if s != nil {
				xs = append(xs, s[k])
			}
		}
		st := reduce(xs)
		if k < len(metrics) {
			st.Name = metrics[k]
		} else {
			st.Name = fmt.Sprintf("metric%d", k)
		}
		res.Stats[k] = st
	}
	return nil
}

func reduce(xs []float64) Stats {
	n := float64(len(xs))
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= n
	ss := 0.0
	mn, mx := xs[0], xs[0]
	for _, x := range xs {
		d := x - mean
		ss += d * d
		if x < mn {
			mn = x
		}
		if x > mx {
			mx = x
		}
	}
	sigma := 0.0
	if len(xs) > 1 {
		sigma = math.Sqrt(ss / (n - 1))
	}
	delta := 0.0
	if mean != 0 {
		delta = 100 * 3 * sigma / math.Abs(mean)
	}
	return Stats{Mean: mean, Sigma: sigma, Min: mn, Max: mx, DeltaPct: delta}
}

// Yield returns the fraction of successful samples for which pass
// returns true. Failed samples count as failures, matching the
// pessimistic convention of production yield analysis.
func (r *Result) Yield(pass func(metrics []float64) bool) float64 {
	if len(r.Samples) == 0 {
		return 0
	}
	ok := 0
	for _, s := range r.Samples {
		if s != nil && pass(s) {
			ok++
		}
	}
	return float64(ok) / float64(len(r.Samples))
}
