// Variance-reduced Monte Carlo: importance sampling and a GP surrogate
// filter layered on the deterministic sampling engine.
//
// The naive estimator needs ~100/p samples to resolve a failure
// probability p, which makes high-sigma yield targets (99.9 % and up)
// unreachable inside an optimisation loop. RunVariance and
// RunVarianceBatch keep the engine's determinism contract — sample i is
// always derived from (seed, i), so results are bit-identical for any
// worker count — while spending circuit evaluations far more
// effectively:
//
//   - StrategyIS draws the global-variation point from a proposal
//     distribution that over-samples the tails and reweights each
//     sample by its likelihood ratio (process.NewSampleIS). Estimates
//     are self-normalised, so only weight ratios matter.
//   - StrategySurrogate simulates an initial training batch, fits a
//     small GP (internal/surrogate) mapping the 4-d global shift to the
//     metric vector, and simulates only samples the GP cannot classify
//     confidently; the rest are answered by the (bias-corrected)
//     prediction. Every decision is logged in Result.Decisions.
//   - StrategyISSurrogate composes both.
//
// Batched runs assign each point wholly to one worker instead of
// chunking samples across the pool: the per-point phases (train → fit →
// classify → verify) are inherently sequential, and whole-point
// assignment preserves bit-identical results for any worker count
// without a barrier per phase.
package montecarlo

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"analogyield/internal/process"
	"analogyield/internal/surrogate"
)

// Strategy selects how the Monte Carlo engine spends its circuit
// evaluations.
type Strategy uint8

const (
	// StrategyNaive is plain Monte Carlo — the default, bit-identical
	// to RunFactory/RunBatch.
	StrategyNaive Strategy = iota
	// StrategyIS draws from an importance-sampling proposal and
	// reweights.
	StrategyIS
	// StrategySurrogate filters samples through a GP surrogate and
	// simulates only the uncertain band.
	StrategySurrogate
	// StrategyISSurrogate composes importance sampling with the
	// surrogate filter.
	StrategyISSurrogate
)

// ParseStrategy maps the flag/config spelling to a Strategy. The empty
// string selects StrategyNaive.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "", "naive":
		return StrategyNaive, nil
	case "is":
		return StrategyIS, nil
	case "surrogate":
		return StrategySurrogate, nil
	case "is+surrogate":
		return StrategyISSurrogate, nil
	}
	return StrategyNaive, fmt.Errorf("montecarlo: unknown strategy %q (want naive, is, surrogate or is+surrogate)", name)
}

func (s Strategy) String() string {
	switch s {
	case StrategyNaive:
		return "naive"
	case StrategyIS:
		return "is"
	case StrategySurrogate:
		return "surrogate"
	case StrategyISSurrogate:
		return "is+surrogate"
	}
	return fmt.Sprintf("strategy(%d)", uint8(s))
}

func (s Strategy) usesIS() bool {
	return s == StrategyIS || s == StrategyISSurrogate
}

func (s Strategy) usesSurrogate() bool {
	return s == StrategySurrogate || s == StrategyISSurrogate
}

// SpecBound is a pass/fail bound on one metric column, used by the
// surrogate filter to classify in spec space: a sample is confidently
// classified only when every bound is cleared (or one is violated) by
// at least Kappa predictive standard deviations.
type SpecBound struct {
	Col    int     // metric column index
	AtMost bool    // true: metric must be ≤ Bound; false: ≥ Bound
	Bound  float64 // the spec limit
}

// FilterDecision records what the surrogate filter did with one sample.
type FilterDecision struct {
	Sample    int  // sample index
	Simulated bool // true: the stored metric vector came from the evaluator
	// Uncertain marks samples the filter could not classify confidently
	// (or never classified, e.g. training fell back) — every uncertain
	// sample is simulated, never answered by the surrogate.
	Uncertain bool
}

// VarianceOptions configures the variance-reduction strategy of a run.
// The zero value selects StrategyNaive and is always valid.
type VarianceOptions struct {
	Strategy Strategy
	// Proposal is the IS sampling distribution; nil selects
	// process.DefaultISProposal(). Ignored by non-IS strategies.
	Proposal *process.Proposal
	// TrainSamples is the number of leading samples simulated to train
	// the surrogate (default 48). Ignored without the surrogate.
	TrainSamples int
	// CorrectionSamples is the number of held-out simulated samples
	// used to measure and subtract the surrogate's prediction bias
	// (default 16). Ignored without the surrogate.
	CorrectionSamples int
	// Kappa is the classification margin in predictive standard
	// deviations for spec-space filtering (default 3). Larger values
	// simulate more and trust the surrogate less.
	Kappa float64
	// Tau bounds the acceptable predictive sd as a fraction of the
	// training-sample sd when no Specs are given (moment-space
	// filtering, default 0.3).
	Tau float64
	// Specs optionally switches the filter to spec-space
	// classification: a prediction is trusted only when every bound is
	// decisively cleared or decisively violated.
	Specs []SpecBound
}

func (v VarianceOptions) withDefaults() VarianceOptions {
	if v.TrainSamples <= 0 {
		v.TrainSamples = 48
	}
	if v.CorrectionSamples <= 0 {
		v.CorrectionSamples = 16
	}
	if v.Kappa <= 0 {
		v.Kappa = 3
	}
	if v.Tau <= 0 {
		v.Tau = 0.3
	}
	return v
}

func (v *VarianceOptions) validate() error {
	switch v.Strategy {
	case StrategyNaive, StrategyIS, StrategySurrogate, StrategyISSurrogate:
	default:
		return fmt.Errorf("montecarlo: invalid strategy %d", v.Strategy)
	}
	if v.Strategy.usesIS() && v.Proposal != nil {
		if err := v.Proposal.Validate(); err != nil {
			return err
		}
	}
	for i, sp := range v.Specs {
		if sp.Col < 0 {
			return fmt.Errorf("montecarlo: spec %d has negative column %d", i, sp.Col)
		}
	}
	return nil
}

// RunVariance is RunFactory with a variance-reduction strategy.
// StrategyNaive delegates to RunFactory exactly (bit-identical results,
// same scheduling); the other strategies run their sequential phases on
// a parallel evaluation pool. Sampling stays deterministic in (Seed,
// sample index) regardless of worker count.
func RunVariance(ctx context.Context, opts Options, v VarianceOptions, factory Factory) (*Result, error) {
	if v.Strategy == StrategyNaive {
		return RunFactory(ctx, opts, factory)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Proc == nil {
		return nil, fmt.Errorf("montecarlo: nil process")
	}
	if opts.Samples <= 0 {
		return nil, fmt.Errorf("montecarlo: Samples must be positive, got %d", opts.Samples)
	}
	if factory == nil {
		return nil, fmt.Errorf("montecarlo: nil evaluator factory")
	}
	if err := v.validate(); err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return runVariancePoint(ctx, opts.Proc, opts.Seed, opts.Samples, v, parMapper(factory, workers), opts.Metrics)
}

// RunVarianceBatch is RunBatch with a variance-reduction strategy.
// StrategyNaive delegates to RunBatch exactly. The other strategies
// keep RunBatch's contract — one persistent worker pool, in-order
// delivery through done, cooperative cancellation, per-point
// determinism for any worker count — but assign each point wholly to
// one worker, since the strategy phases within a point are sequential.
func RunVarianceBatch(ctx context.Context, opts BatchOptions, v VarianceOptions, points []PointSpec, factory BatchFactory, done func(point int, res *Result, err error) error) error {
	if v.Strategy == StrategyNaive {
		return RunBatch(ctx, opts, points, factory, done)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Proc == nil {
		return fmt.Errorf("montecarlo: nil process")
	}
	if factory == nil {
		return fmt.Errorf("montecarlo: nil evaluator factory")
	}
	if done == nil {
		return fmt.Errorf("montecarlo: nil done callback")
	}
	for p, spec := range points {
		if spec.Samples <= 0 {
			return fmt.Errorf("montecarlo: point %d: Samples must be positive, got %d", p, spec.Samples)
		}
	}
	if err := v.validate(); err != nil {
		return err
	}
	if len(points) == 0 {
		return nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}
	gauges := opts.Gauges
	if gauges == nil {
		gauges = nopGauges{}
	}

	ictx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]*Result, len(points))
	errs := make([]error, len(points))
	pointCh := make(chan int)
	completed := make(chan int, len(points))

	var started atomic.Int64
	delivered := 0
	defer func() {
		gauges.AddPointsInFlight(int64(delivered) - started.Load())
	}()

	go func() {
		defer close(pointCh)
		for p := range points {
			started.Add(1)
			gauges.AddPointsInFlight(1)
			select {
			case pointCh <- p:
				gauges.AddQueueDepth(1)
			case <-ictx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pe := factory()
			for p := range pointCh {
				gauges.AddQueueDepth(-1)
				var eval Evaluator
				if pe != nil {
					point := p
					eval = func(s *process.Sample) ([]float64, error) { return pe(point, s) }
				}
				gauges.AddBusyWorkers(1)
				res, err := runVariancePoint(ictx, opts.Proc, points[p].Seed, points[p].Samples, v, seqMapper(eval), opts.Metrics)
				gauges.AddBusyWorkers(-1)
				if ictx.Err() != nil {
					// Cancelled mid-point: never deliver a partial point.
					return
				}
				results[p], errs[p] = res, err
				completed <- p
			}
		}()
	}
	go func() {
		wg.Wait()
		close(completed)
	}()

	// In-order delivery, as in RunBatch.
	isDone := make([]bool, len(points))
	frontier := 0
	var firstErr error
	for p := range completed {
		isDone[p] = true
		for firstErr == nil && ctx.Err() == nil && frontier < len(points) && isDone[frontier] {
			derr := done(frontier, results[frontier], errs[frontier])
			delivered++
			gauges.AddPointsInFlight(-1)
			frontier++
			if derr != nil {
				firstErr = derr
				cancel()
			}
		}
	}
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// mapper applies f (with a worker-local evaluator) to each listed
// sample index, either sequentially or on a worker pool. It returns
// when every index is processed or ctx is cancelled.
type mapper func(ctx context.Context, idxs []int, f func(eval Evaluator, i int))

func seqMapper(eval Evaluator) mapper {
	return func(ctx context.Context, idxs []int, f func(Evaluator, int)) {
		for _, i := range idxs {
			if ctx.Err() != nil {
				return
			}
			f(eval, i)
		}
	}
}

func parMapper(factory Factory, workers int) mapper {
	return func(ctx context.Context, idxs []int, f func(Evaluator, int)) {
		if len(idxs) == 0 {
			return
		}
		w := workers
		if w > len(idxs) {
			w = len(idxs)
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for j := 0; j < w; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				eval := factory()
				for {
					k := int(next.Add(1)) - 1
					if k >= len(idxs) || ctx.Err() != nil {
						return
					}
					f(eval, idxs[k])
				}
			}()
		}
		wg.Wait()
	}
}

// runVariancePoint runs one point's variance-reduced analysis. The
// sample stream (weights, features, evaluator inputs) is derived purely
// from (seed, index), so the result does not depend on how run
// parallelises the evaluation phases.
func runVariancePoint(ctx context.Context, proc *process.Process, seed int64, samples int, v VarianceOptions, run mapper, metrics []string) (*Result, error) {
	v = v.withDefaults()
	isOn := v.Strategy.usesIS()
	surOn := v.Strategy.usesSurrogate()

	res := &Result{Samples: make([][]float64, samples)}
	var feats [][]float64
	if isOn {
		res.Weights = make([]float64, samples)
	}
	if surOn {
		feats = make([][]float64, samples)
	}
	// Cheap sequential pre-pass: draw every sample's weight and filter
	// features once, up front. Evaluation workers later re-derive the
	// full sample from its index, so no per-sample RNG state needs to
	// be retained or shared.
	for i := 0; i < samples; i++ {
		var s *process.Sample
		if isOn {
			var lw float64
			s, lw = proc.NewSampleIS(seed, i, v.Proposal)
			res.Weights[i] = math.Exp(lw)
		} else if surOn {
			s = proc.NewSample(seed, i)
		}
		if surOn {
			u := s.GlobalSigmaUnits()
			feats[i] = u[:]
		}
	}

	draw := func(i int) *process.Sample {
		if isOn {
			s, _ := proc.NewSampleIS(seed, i, v.Proposal)
			return s
		}
		return proc.NewSample(seed, i)
	}
	var failed atomic.Int64
	evalOne := func(eval Evaluator, i int) {
		if eval == nil {
			failed.Add(1)
			return
		}
		m, err := eval(draw(i))
		if err != nil {
			failed.Add(1)
			return
		}
		res.Samples[i] = m
	}

	if !surOn {
		run(ctx, ints(0, samples), evalOne)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res.Failed = int(failed.Load())
		if err := finishVariance(res, metrics, nil); err != nil {
			return nil, err
		}
		res.FullEvals = samples
		res.Predicted = 0
		return res, nil
	}

	// Surrogate filter. Simulate the training + correction prefix,
	// fit, then classify the remainder.
	nTrain := v.TrainSamples
	if nTrain > samples {
		nTrain = samples
	}
	nCorr := v.CorrectionSamples
	if nTrain+nCorr > samples {
		nCorr = samples - nTrain
	}
	prefix := nTrain + nCorr

	run(ctx, ints(0, prefix), evalOne)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	decisions := make([]FilterDecision, 0, samples)
	for i := 0; i < prefix; i++ {
		decisions = append(decisions, FilterDecision{Sample: i, Simulated: true})
	}

	var xs, ys [][]float64
	for i := 0; i < nTrain; i++ {
		if res.Samples[i] != nil {
			xs = append(xs, feats[i])
			ys = append(ys, res.Samples[i])
		}
	}

	// surrogateAll evaluates the whole remainder when the filter is
	// unavailable — the run degrades to naive/IS, never to a guess.
	simulateAll := func() (*Result, error) {
		rest := ints(prefix, samples)
		run(ctx, rest, evalOne)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, i := range rest {
			decisions = append(decisions, FilterDecision{Sample: i, Simulated: true, Uncertain: true})
		}
		res.Failed = int(failed.Load())
		res.Decisions = decisions
		if err := finishVariance(res, metrics, nil); err != nil {
			return nil, err
		}
		res.FullEvals = samples
		res.Predicted = 0
		return res, nil
	}

	if len(xs) < 8 || prefix >= samples {
		return simulateAll()
	}
	g, err := surrogate.Train(xs, ys)
	if err != nil {
		return simulateAll()
	}
	width := g.Outputs()
	for i, sp := range v.Specs {
		if sp.Col >= width {
			return nil, fmt.Errorf("montecarlo: spec %d column %d out of range (metric width %d)", i, sp.Col, width)
		}
	}

	// Bias correction from the held-out batch, and the training-sample
	// spread that moment-space filtering compares predictive sd
	// against.
	bias := make([]float64, width)
	mean := make([]float64, width)
	sd := make([]float64, width)
	corrN := 0
	for i := nTrain; i < prefix; i++ {
		if res.Samples[i] == nil {
			continue
		}
		if err := g.Predict(feats[i], mean, nil); err != nil {
			return nil, err
		}
		for k := range bias {
			bias[k] += res.Samples[i][k] - mean[k]
		}
		corrN++
	}
	if corrN > 0 {
		for k := range bias {
			bias[k] /= float64(corrN)
		}
	}
	trainAcc := make([]welford, width)
	for i := 0; i < prefix; i++ {
		if res.Samples[i] == nil {
			continue
		}
		for k := range trainAcc {
			trainAcc[k].add(res.Samples[i][k])
		}
	}

	// Classify. Confident predictions are stored (with their conditional
	// variance accumulated for the sigma add-back); the uncertain band
	// goes to the evaluator.
	predVarSum := make([]float64, width)
	var toEval []int
	for i := prefix; i < samples; i++ {
		if err := g.Predict(feats[i], mean, sd); err != nil {
			return nil, err
		}
		for k := range mean {
			mean[k] += bias[k]
		}
		if filterConfident(&v, mean, sd, trainAcc) {
			pred := make([]float64, width)
			copy(pred, mean)
			res.Samples[i] = pred
			w := 1.0
			if res.Weights != nil {
				w = res.Weights[i]
			}
			for k := range sd {
				predVarSum[k] += w * sd[k] * sd[k]
			}
			decisions = append(decisions, FilterDecision{Sample: i})
		} else {
			toEval = append(toEval, i)
			decisions = append(decisions, FilterDecision{Sample: i, Simulated: true, Uncertain: true})
		}
	}

	run(ctx, toEval, evalOne)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res.Failed = int(failed.Load())
	res.Decisions = decisions
	if err := finishVariance(res, metrics, predVarSum); err != nil {
		return nil, err
	}
	res.FullEvals = prefix + len(toEval)
	res.Predicted = samples - prefix - len(toEval)
	return res, nil
}

// filterConfident decides whether a prediction with uncertainty sd can
// stand in for a simulation. With Specs, the sample must clear or
// violate the bounds decisively (Kappa sds of slack); without, the
// prediction must be sharp relative to the observed metric spread.
func filterConfident(v *VarianceOptions, mean, sd []float64, train []welford) bool {
	if len(v.Specs) > 0 {
		clearFail := false
		allClearPass := true
		for _, sp := range v.Specs {
			m, margin := mean[sp.Col], v.Kappa*sd[sp.Col]
			if sp.AtMost {
				if m-margin > sp.Bound {
					clearFail = true
				}
				if m+margin > sp.Bound {
					allClearPass = false
				}
			} else {
				if m+margin < sp.Bound {
					clearFail = true
				}
				if m-margin < sp.Bound {
					allClearPass = false
				}
			}
		}
		return clearFail || allClearPass
	}
	for k := range mean {
		ts := train[k].stats().Sigma
		if sd[k] > v.Tau*ts {
			return false
		}
	}
	return true
}

// waccum is the weighted (West) extension of welford: streaming
// weighted mean and variance with reliability-weight Bessel correction.
type waccum struct {
	n        int
	w, w2    float64
	mean, m2 float64
	min, max float64
}

func (a *waccum) add(w, x float64) {
	if a.n == 0 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	a.n++
	a.w += w
	a.w2 += w * w
	d := x - a.mean
	a.mean += (w / a.w) * d
	a.m2 += w * d * (x - a.mean)
}

// finishVariance reduces a weighted and/or partially-predicted result.
// predVarSum carries Σ w·sd² over surrogate-predicted samples per
// metric: predictions stand in for conditional means, so their
// conditional variance must be added back (law of total variance) or
// the filter would deflate sigma. A plain unweighted result delegates
// to finishStats, keeping the naive path untouched.
func finishVariance(res *Result, metrics []string, predVarSum []float64) error {
	if res.Weights == nil && predVarSum == nil {
		return finishStats(res, metrics)
	}
	var width int
	for _, s := range res.Samples {
		if s != nil {
			width = len(s)
			break
		}
	}
	if width == 0 {
		return fmt.Errorf("montecarlo: every sample failed (%d of %d)", res.Failed, len(res.Samples))
	}
	acc := make([]waccum, width)
	for i, s := range res.Samples {
		if s == nil {
			continue
		}
		w := 1.0
		if res.Weights != nil {
			w = res.Weights[i]
		}
		for k := range acc {
			acc[k].add(w, s[k])
		}
	}
	res.Stats = make([]Stats, width)
	for k := range acc {
		a := &acc[k]
		variance := 0.0
		if denom := a.w - a.w2/a.w; denom > 0 {
			variance = a.m2 / denom
		}
		if predVarSum != nil && a.w > 0 {
			variance += predVarSum[k] / a.w
		}
		sigma := math.Sqrt(variance)
		delta := 0.0
		if a.mean != 0 {
			delta = 100 * 3 * sigma / math.Abs(a.mean)
		}
		res.Stats[k] = Stats{
			Name: metricName(metrics, k), Mean: a.mean, Sigma: sigma,
			Min: a.min, Max: a.max, DeltaPct: delta,
		}
	}
	res.ESS = acc[0].w * acc[0].w / acc[0].w2
	return nil
}

func ints(lo, hi int) []int {
	if hi <= lo {
		return nil
	}
	xs := make([]int, hi-lo)
	for i := range xs {
		xs[i] = lo + i
	}
	return xs
}
