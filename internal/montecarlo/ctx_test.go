package montecarlo

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"analogyield/internal/process"
)

func TestRunCancelMidRun(t *testing.T) {
	// Cancel from inside the evaluator after 50 samples: dispatch must
	// stop promptly (one-sample latency per worker) and the run must
	// report ctx.Err() rather than partial statistics.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var n atomic.Int64
	eval := func(s *process.Sample) ([]float64, error) {
		if n.Add(1) == 50 {
			cancel()
		}
		return vthEval(s)
	}
	res, err := Run(ctx, Options{Proc: proc(), Samples: 4000, Seed: 1, Workers: 2}, eval)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("cancelled run returned statistics")
	}
	// In-flight samples finish but no new ones are dispatched: with 2
	// workers at most a couple of extra evaluations happen after sample 50.
	if got := n.Load(); got > 60 {
		t.Errorf("%d samples evaluated after cancel at 50; dispatch did not stop", got)
	}
}

func TestRunCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var n atomic.Int64
	eval := func(s *process.Sample) ([]float64, error) {
		n.Add(1)
		return vthEval(s)
	}
	if _, err := Run(ctx, Options{Proc: proc(), Samples: 100, Seed: 1, Workers: 1}, eval); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := n.Load(); got > 1 {
		t.Errorf("%d samples evaluated under a pre-cancelled context", got)
	}
}
