package montecarlo

import (
	"math/rand"
	"testing"
)

func benchSamples(n, width int) [][]float64 {
	rng := rand.New(rand.NewSource(1))
	samples := make([][]float64, n)
	for i := range samples {
		if i%37 == 0 {
			continue // a sprinkling of failed samples
		}
		row := make([]float64, width)
		for k := range row {
			row[k] = rng.NormFloat64()
		}
		samples[i] = row
	}
	return samples
}

// BenchmarkFinishStats exercises the one-pass Welford reduction. The
// previous per-metric re-walk with append-grown copies measured ~194 µs
// and 513 kB / 69 allocs per reduction on the same workload; the
// single-pass version is ~74 µs and 416 B / 6 allocs.
func BenchmarkFinishStats(b *testing.B) {
	samples := benchSamples(4000, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := &Result{Samples: samples}
		if err := finishStats(res, nil); err != nil {
			b.Fatal(err)
		}
	}
}
