// Point-level batch scheduling. A yield flow runs one Monte Carlo
// analysis per Pareto point; launching RunFactory per point serialises
// the points and tears the worker pool down between them, so the pool
// drains at every point boundary and short points never overlap long
// ones. RunBatch instead runs ONE persistent pool for the whole batch,
// fed (point, sample-chunk) work items, so workers stream across point
// boundaries without ever going idle.
//
// Determinism: sample i of point p always draws process sample
// (points[p].Seed, i) — the same derivation RunFactory uses — and each
// sample slot is written by exactly one worker, so a point's Result is
// bit-identical to a standalone RunFactory run with the same seed, for
// any Workers and ChunkSize. Completion is delivered in point order
// through an in-order buffer, so observer events and checkpoints built
// in the done callback are reproducible too.
package montecarlo

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"analogyield/internal/process"
)

// PointSpec describes one point's Monte Carlo run within a batch.
type PointSpec struct {
	Seed    int64 // RNG stream identifier for this point
	Samples int   // number of MC samples (required, > 0)
}

// PointEvaluator evaluates one process sample of the point at batch
// position point. It is called from a single goroutine only, so it may
// own reusable scratch state (typically a solver workspace); point
// varies call to call as the worker moves across the batch.
type PointEvaluator func(point int, s *process.Sample) ([]float64, error)

// BatchFactory supplies each worker goroutine with its own
// PointEvaluator.
type BatchFactory func() PointEvaluator

// Gauges receives scheduler occupancy deltas: how many workers are
// evaluating (vs starved), how many work items are queued, and how many
// points have started but not yet been delivered. core.Metrics
// implements it; a nil Gauges is valid and drops the updates.
type Gauges interface {
	AddBusyWorkers(delta int64)
	AddQueueDepth(delta int64)
	AddPointsInFlight(delta int64)
}

type nopGauges struct{}

func (nopGauges) AddBusyWorkers(int64)    {}
func (nopGauges) AddQueueDepth(int64)     {}
func (nopGauges) AddPointsInFlight(int64) {}

// BatchOptions configures a batch run.
type BatchOptions struct {
	Proc    *process.Process // required
	Workers int              // parallel workers (default: GOMAXPROCS)
	// ChunkSize is the number of samples per work item (default 32).
	// Smaller chunks spread a single slow point across more workers at
	// the cost of more scheduling traffic.
	ChunkSize int
	// Metrics optionally names the metric columns for reporting.
	Metrics []string
	Gauges  Gauges // optional scheduler occupancy sink
}

// batchPoint accumulates one point's samples as its chunks complete.
type batchPoint struct {
	res       *Result
	failed    atomic.Int64
	remaining atomic.Int64 // samples not yet evaluated
}

// RunBatch evaluates every point's Monte Carlo analysis on one shared
// worker pool and calls done once per point, in point order, with
// either the point's Result or its error (e.g. every sample failed —
// the caller decides whether that drops the point or aborts). A non-nil
// error from done aborts the batch and is returned.
//
// Cancellation is cooperative: when ctx is cancelled, dispatch and
// delivery stop, already-queued chunks finish (bounding latency to a
// few chunks), and RunBatch returns ctx.Err(). done is never called
// after the cancellation is observed and never sees a partial point, so
// a checkpoint built in done records exactly the delivered prefix.
func RunBatch(ctx context.Context, opts BatchOptions, points []PointSpec, factory BatchFactory, done func(point int, res *Result, err error) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Proc == nil {
		return fmt.Errorf("montecarlo: nil process")
	}
	if factory == nil {
		return fmt.Errorf("montecarlo: nil evaluator factory")
	}
	if done == nil {
		return fmt.Errorf("montecarlo: nil done callback")
	}
	for p, spec := range points {
		if spec.Samples <= 0 {
			return fmt.Errorf("montecarlo: point %d: Samples must be positive, got %d", p, spec.Samples)
		}
	}
	if len(points) == 0 {
		return nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	chunk := opts.ChunkSize
	if chunk <= 0 {
		chunk = 32
	}
	gauges := opts.Gauges
	if gauges == nil {
		gauges = nopGauges{}
	}

	// ictx lets a done-callback error stop dispatch without cancelling
	// the caller's context.
	ictx, cancel := context.WithCancel(ctx)
	defer cancel()

	state := make([]batchPoint, len(points))
	for p := range state {
		state[p].res = &Result{Samples: make([][]float64, points[p].Samples)}
		state[p].remaining.Store(int64(points[p].Samples))
	}

	type item struct{ p, lo, hi int }
	work := make(chan item, 2*workers)
	completed := make(chan int, len(points))

	// started counts points whose first chunk was dispatched; delivered
	// counts points handed to done. Their difference settles the
	// points-in-flight gauge on early exit.
	var started atomic.Int64
	delivered := 0
	defer func() {
		gauges.AddPointsInFlight(int64(delivered) - started.Load())
	}()

	// Dispatcher: stream (point, chunk) items. On cancellation it stops
	// mid-point; that point can then never complete, which is what keeps
	// partially-evaluated points out of the delivered prefix.
	go func() {
		defer close(work)
		for p, spec := range points {
			started.Add(1)
			gauges.AddPointsInFlight(1)
			for lo := 0; lo < spec.Samples; lo += chunk {
				hi := lo + chunk
				if hi > spec.Samples {
					hi = spec.Samples
				}
				select {
				case work <- item{p, lo, hi}:
					gauges.AddQueueDepth(1)
				case <-ictx.Done():
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eval := factory()
			for it := range work {
				gauges.AddQueueDepth(-1)
				gauges.AddBusyWorkers(1)
				st := &state[it.p]
				for i := it.lo; i < it.hi; i++ {
					if eval == nil {
						st.failed.Add(1)
						continue
					}
					s := opts.Proc.NewSample(points[it.p].Seed, i)
					m, err := eval(it.p, s)
					if err != nil {
						st.failed.Add(1)
						continue
					}
					st.res.Samples[i] = m
				}
				gauges.AddBusyWorkers(-1)
				if st.remaining.Add(int64(it.lo-it.hi)) == 0 {
					completed <- it.p
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(completed)
	}()

	// In-order delivery: advance a frontier over the completion set so
	// done sees points 0, 1, 2, … regardless of finish order. completed
	// is buffered for every point, so workers never block on it even
	// after delivery stops.
	isDone := make([]bool, len(points))
	frontier := 0
	var firstErr error
	for p := range completed {
		isDone[p] = true
		for firstErr == nil && ctx.Err() == nil && frontier < len(points) && isDone[frontier] {
			st := &state[frontier]
			st.res.Failed = int(st.failed.Load())
			err := finishStats(st.res, opts.Metrics)
			var derr error
			if err != nil {
				derr = done(frontier, nil, err)
			} else {
				derr = done(frontier, st.res, nil)
			}
			delivered++
			gauges.AddPointsInFlight(-1)
			frontier++
			if derr != nil {
				firstErr = derr
				cancel()
			}
		}
	}
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
