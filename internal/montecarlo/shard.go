// Distributed extension of the batch scheduler. RunBatchDistributed
// splits every point's sample range into contiguous shards, evaluates
// shard 0 on the local worker pool (the exact RunBatch machinery) and
// farms the rest to a ShardDispatcher — in the ayd server, peer
// replicas reached over an internal HTTP route. Because sample i of
// point p is ALWAYS process sample (points[p].Seed, i) no matter which
// machine computes it, and because the merged sample array is assembled
// by absolute index before statistics run, a point's Result is
// bit-identical for ANY shard layout — 1, 2 or 4 replicas, or a peer
// failing over to local evaluation mid-batch. That invariant is the
// correctness contract of cluster mode and is pinned by tests.
package montecarlo

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ShardDispatcher farms sample shards to remote evaluators.
// Implementations must be safe for concurrent use.
type ShardDispatcher interface {
	// Shards reports how many remote shards to peel off each point (0
	// disables distribution; each point is then fully local).
	Shards() int
	// EvalShard evaluates samples [lo, hi) of one point remotely and
	// returns hi-lo rows: rows[k] holds the metrics of sample lo+k,
	// computed from process sample (seed, lo+k); a nil row marks a
	// failed sample. A non-nil error means the whole shard is unserved —
	// the scheduler then evaluates the range locally, preserving
	// bit-identical results.
	EvalShard(ctx context.Context, genes []float64, seed int64, lo, hi int) ([][]float64, error)
}

// shardRanges splits [0, n) into parts contiguous ranges, sized as
// evenly as possible (the first n%parts ranges get one extra sample).
// Purely a function of (n, parts), so every replica computes the same
// layout.
func shardRanges(n, parts int) [][2]int {
	if parts <= 1 || n <= 0 {
		return [][2]int{{0, n}}
	}
	if parts > n {
		parts = n
	}
	out := make([][2]int, 0, parts)
	base, rem := n/parts, n%parts
	lo := 0
	for i := 0; i < parts; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, [2]int{lo, lo + size})
		lo += size
	}
	return out
}

// RunBatchDistributed is RunBatch with the sample space of every point
// spread across the local pool and the dispatcher's remote shards. With
// a nil dispatcher (or Shards() == 0) it IS RunBatch. genes[p] carries
// point p's genome for the remote side; the local evaluator keeps
// receiving the batch position exactly as in RunBatch.
//
// Delivery, cancellation and error semantics match RunBatch: done runs
// once per point in point order, a done error aborts the batch, and a
// remote failure silently degrades that shard to local evaluation (the
// dispatcher records the fallback for observability).
func RunBatchDistributed(ctx context.Context, opts BatchOptions, points []PointSpec, genes [][]float64, factory BatchFactory, disp ShardDispatcher, done func(point int, res *Result, err error) error) error {
	if disp == nil || disp.Shards() <= 0 {
		return RunBatch(ctx, opts, points, factory, done)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Proc == nil {
		return fmt.Errorf("montecarlo: nil process")
	}
	if factory == nil {
		return fmt.Errorf("montecarlo: nil evaluator factory")
	}
	if done == nil {
		return fmt.Errorf("montecarlo: nil done callback")
	}
	if len(genes) != len(points) {
		return fmt.Errorf("montecarlo: %d gene vectors for %d points", len(genes), len(points))
	}
	for p, spec := range points {
		if spec.Samples <= 0 {
			return fmt.Errorf("montecarlo: point %d: Samples must be positive, got %d", p, spec.Samples)
		}
	}
	if len(points) == 0 {
		return nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	chunk := opts.ChunkSize
	if chunk <= 0 {
		chunk = 32
	}
	gauges := opts.Gauges
	if gauges == nil {
		gauges = nopGauges{}
	}
	shards := disp.Shards()

	ictx, cancel := context.WithCancel(ctx)
	defer cancel()

	state := make([]batchPoint, len(points))
	for p := range state {
		state[p].res = &Result{Samples: make([][]float64, points[p].Samples)}
		state[p].remaining.Store(int64(points[p].Samples))
	}

	type item struct{ p, lo, hi int }
	work := make(chan item, 2*workers)
	completed := make(chan int, len(points))

	var started atomic.Int64
	delivered := 0
	defer func() {
		gauges.AddPointsInFlight(int64(delivered) - started.Load())
	}()

	// enqueueLocal chunks [lo, hi) of point p onto the local pool.
	enqueueLocal := func(p, lo, hi int) {
		for ; lo < hi; lo += chunk {
			end := lo + chunk
			if end > hi {
				end = hi
			}
			select {
			case work <- item{p, lo, end}:
				gauges.AddQueueDepth(1)
			case <-ictx.Done():
				return
			}
		}
	}

	// producers covers the dispatch loop and every remote fetcher: the
	// work channel closes only when no goroutine can still enqueue local
	// items (fetchers enqueue their range as a fallback on error).
	var producers sync.WaitGroup
	// remoteSem bounds concurrent remote calls so a thousand-point batch
	// doesn't open a thousand simultaneous requests per peer.
	remoteSem := make(chan struct{}, 4*shards)

	producers.Add(1)
	go func() {
		defer producers.Done()
		for p, spec := range points {
			started.Add(1)
			gauges.AddPointsInFlight(1)
			ranges := shardRanges(spec.Samples, shards+1)
			for ri, r := range ranges {
				lo, hi := r[0], r[1]
				if hi <= lo {
					continue
				}
				if ri == 0 {
					// Shard 0 stays local: the owning replica always
					// contributes, and a batch never stalls on peers alone.
					enqueueLocal(p, lo, hi)
					continue
				}
				select {
				case remoteSem <- struct{}{}:
				case <-ictx.Done():
					return
				}
				producers.Add(1)
				go func(p, lo, hi int) {
					defer producers.Done()
					defer func() { <-remoteSem }()
					rows, err := disp.EvalShard(ictx, genes[p], points[p].Seed, lo, hi)
					if err != nil || len(rows) != hi-lo {
						// Unserved shard: evaluate it here. Same samples,
						// same derivation — the result cannot differ.
						enqueueLocal(p, lo, hi)
						return
					}
					st := &state[p]
					for k, row := range rows {
						if row == nil {
							st.failed.Add(1)
							continue
						}
						st.res.Samples[lo+k] = row
					}
					if st.remaining.Add(int64(lo-hi)) == 0 {
						completed <- p
					}
				}(p, lo, hi)
			}
			if ictx.Err() != nil {
				return
			}
		}
	}()
	go func() {
		producers.Wait()
		close(work)
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eval := factory()
			for it := range work {
				gauges.AddQueueDepth(-1)
				gauges.AddBusyWorkers(1)
				st := &state[it.p]
				for i := it.lo; i < it.hi; i++ {
					if eval == nil {
						st.failed.Add(1)
						continue
					}
					s := opts.Proc.NewSample(points[it.p].Seed, i)
					m, err := eval(it.p, s)
					if err != nil {
						st.failed.Add(1)
						continue
					}
					st.res.Samples[i] = m
				}
				gauges.AddBusyWorkers(-1)
				if st.remaining.Add(int64(it.lo-it.hi)) == 0 {
					completed <- it.p
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(completed)
	}()

	// In-order delivery, exactly as RunBatch: done sees points 0, 1, 2…
	// whatever the completion order across machines.
	isDone := make([]bool, len(points))
	frontier := 0
	var firstErr error
	for p := range completed {
		isDone[p] = true
		for firstErr == nil && ctx.Err() == nil && frontier < len(points) && isDone[frontier] {
			st := &state[frontier]
			st.res.Failed = int(st.failed.Load())
			err := finishStats(st.res, opts.Metrics)
			var derr error
			if err != nil {
				derr = done(frontier, nil, err)
			} else {
				derr = done(frontier, st.res, nil)
			}
			delivered++
			gauges.AddPointsInFlight(-1)
			frontier++
			if derr != nil {
				firstErr = derr
				cancel()
			}
		}
	}
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
