* Symmetrical OTA open-loop testbench (paper Fig 5 topology)
* Run:  go run ./cmd/asim -op -ac 100:1g:12 -probe out netlists/ota_openloop.sp
*
* The DC servo (RFB/CFB) centres the output bias, exactly as the Go
* testbench builder does; at AC frequencies the loop is transparent.

.subckt symota inp inn out vdd bias
* differential pair (fixed geometry)
M1 n1 inn tail 0 nmos W=20u L=1u
M2 n2 inp tail 0 nmos W=20u L=1u
* PMOS diode loads
M3 n1 n1 vdd vdd pmos W=15u L=1u
M4 n2 n2 vdd vdd pmos W=15u L=1u
* PMOS mirror outputs
M5 outm n1 vdd vdd pmos W=45u L=1.5u
M6 out  n2 vdd vdd pmos W=45u L=1.5u
* NMOS output mirror
M7 outm outm 0 0 nmos W=20u L=1.5u
M8 out  outm 0 0 nmos W=20u L=1.5u
* bias / tail mirror
M9  bias bias 0 0 nmos W=20u L=2u
M10 tail bias 0 0 nmos W=20u L=2u
.ends

VDD vdd 0 DC 3.3
VIN inp 0 DC 1.5 AC 1
IB  vdd bias DC 10u
CL  out 0 2p
RFB out inn 1g
CFB inn 0 1
X1 inp inn out vdd bias symota
.end
