package netlist

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"analogyield/internal/analysis"
	"analogyield/internal/circuit"
)

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"1k", 1e3}, {"10u", 1e-5}, {"2.2p", 2.2e-12}, {"1meg", 1e6},
		{"1.5", 1.5}, {"-3m", -3e-3}, {"100f", 1e-13}, {"1n", 1e-9},
		{"3g", 3e9}, {"2t", 2e12}, {"0.35u", 0.35e-6},
	}
	for _, c := range cases {
		got, err := ParseValue(c.in)
		if err != nil {
			t.Errorf("ParseValue(%q): %v", c.in, err)
			continue
		}
		if math.Abs(got-c.want) > math.Abs(c.want)*1e-12 {
			t.Errorf("ParseValue(%q) = %g, want %g", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "abc", "1x2"} {
		if _, err := ParseValue(bad); err == nil {
			t.Errorf("ParseValue(%q): want error", bad)
		}
	}
}

func TestFormatValueRoundTrip(t *testing.T) {
	for _, v := range []float64{1e3, 2.2e-12, 3.3, 10e-6, 1e6, 4.7e-9} {
		s := FormatValue(v)
		back, err := ParseValue(s)
		if err != nil {
			t.Fatalf("FormatValue(%g) = %q unparseable: %v", v, s, err)
		}
		if math.Abs(back-v) > math.Abs(v)*1e-5 {
			t.Errorf("round trip %g -> %q -> %g", v, s, back)
		}
	}
}

const dividerNet = `* simple divider
V1 in 0 DC 3
R1 in mid 1k
R2 mid 0 2k
.end
`

func TestParseDivider(t *testing.T) {
	n, err := ParseString(dividerNet)
	if err != nil {
		t.Fatal(err)
	}
	if n.Title != "simple divider" {
		t.Errorf("title = %q", n.Title)
	}
	if len(n.Devices()) != 3 {
		t.Fatalf("devices = %d", len(n.Devices()))
	}
	op, err := analysis.OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := op.V("mid")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-2) > 1e-6 {
		t.Errorf("V(mid) = %g", v)
	}
}

func TestParseMOSWithModelCard(t *testing.T) {
	src := `.title mos test
.model fastn nmos VTO=0.4 KP=200u
VDD vdd 0 DC 3.3
VG g 0 DC 1.0
RD vdd d 20k
M1 d g 0 0 fastn W=10u L=1u
.end
`
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	m := n.Device("M1").(*circuit.MOSFET)
	if m.Model.VTO != 0.4 || math.Abs(m.Model.KP-200e-6) > 1e-12 {
		t.Errorf("model overrides not applied: %+v", m.Model)
	}
	if math.Abs(m.W-10e-6) > 1e-15 || math.Abs(m.L-1e-6) > 1e-15 {
		t.Errorf("geometry = %g x %g", m.W, m.L)
	}
	if _, err := analysis.OP(n, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseModelForwardReference(t *testing.T) {
	// Device line before its .model card must still resolve.
	src := `M1 d g 0 0 fastn W=10u L=1u
V1 d 0 DC 1
V2 g 0 DC 1
.model fastn nmos VTO=0.3
.end
`
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if n.Device("M1").(*circuit.MOSFET).Model.VTO != 0.3 {
		t.Error("forward model reference not resolved")
	}
}

func TestParseControlledSources(t *testing.T) {
	src := `V1 in 0 DC 1
E1 e 0 in 0 5
RL1 e 0 1k
G1 0 g in 0 2m
RL2 g 0 1k
.end
`
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	op, err := analysis.OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	ve, _ := op.V("e")
	vg, _ := op.V("g")
	if math.Abs(ve-5) > 1e-6 {
		t.Errorf("VCVS out = %g", ve)
	}
	if math.Abs(vg-2) > 1e-6 {
		t.Errorf("VCCS out = %g (want 2 V = 2mS*1V*1k)", vg)
	}
}

func TestParseContinuationLines(t *testing.T) {
	src := "V1 in 0\n+ DC 3\nR1 in 0 1k\n.end\n"
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	vs := n.Device("V1").(*circuit.VSource)
	if vs.DC != 3 {
		t.Errorf("continuation lost DC value: %g", vs.DC)
	}
}

func TestParseSourceSyntaxVariants(t *testing.T) {
	src := `V1 a 0 5
V2 b 0 DC 2 AC 1
I1 0 c 1m
R1 a 0 1k
R2 b 0 1k
R3 c 0 1k
.end
`
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if n.Device("V1").(*circuit.VSource).DC != 5 {
		t.Error("bare value not parsed as DC")
	}
	v2 := n.Device("V2").(*circuit.VSource)
	if v2.DC != 2 || v2.ACMag != 1 {
		t.Error("DC/AC pair not parsed")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"R1 a 0\n",                       // missing value
		"R1 a 0 -5\n",                    // negative resistance
		"Q1 a b c\n",                     // unsupported element
		"M1 d g 0 0 nomodel W=1u L=1u\n", // unknown model
		".model x diode\n",               // unknown model type
		".subckt foo\n",                  // unsupported card
		"+ R1 a 0 1k\n",                  // leading continuation
		"R1 a 0 1k\nR1 b 0 2k\n",         // duplicate name
		"M1 d g 0 0 nmos W=1u Z=2\n",     // unknown M parameter
	}
	for _, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("accepted bad netlist %q", src)
		}
	}
}

func TestParseStopsAtEnd(t *testing.T) {
	n, err := ParseString("R1 a 0 1k\n.end\nR2 b 0 2k\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Devices()) != 1 {
		t.Error("content after .end parsed")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	src := `.title round trip
V1 in 0 DC 3 AC 1
R1 in mid 1k
C1 mid 0 10p
L1 mid x 1u
R2 x 0 50
E1 e 0 mid 0 2
RL e 0 1k
M1 d g 0 0 nmos W=20u L=2u
VD d 0 DC 2
VG g 0 DC 1
.end
`
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Serialize(n, &buf); err != nil {
		t.Fatal(err)
	}
	n2, err := ParseString(buf.String())
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, buf.String())
	}
	if len(n2.Devices()) != len(n.Devices()) {
		t.Fatalf("device count changed: %d -> %d", len(n.Devices()), len(n2.Devices()))
	}
	// Same DC solution.
	op1, err := analysis.OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	op2, err := analysis.OP(n2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range []string{"mid", "e", "d"} {
		v1, _ := op1.V(node)
		v2, _ := op2.V(node)
		if math.Abs(v1-v2) > 1e-6 {
			t.Errorf("node %s: %g vs %g after round trip", node, v1, v2)
		}
	}
	if !strings.Contains(buf.String(), ".model m1_model nmos") {
		t.Error("MOSFET model card not emitted")
	}
}
