package netlist

import (
	"math"
	"testing"

	"analogyield/internal/analysis"
	"analogyield/internal/measure"
	"analogyield/internal/ota"
)

// TestOTANetlistMatchesBuilder is a cross-representation regression: the
// shipped .sp testbench (netlists/ota_openloop.sp, mirrored in testdata)
// must produce the same open-loop gain and phase margin as the Go
// topology builder with the same sizes.
func TestOTANetlistMatchesBuilder(t *testing.T) {
	n, err := ParseFile("testdata/ota_openloop.sp")
	if err != nil {
		t.Fatal(err)
	}
	op, err := analysis.OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := analysis.ACDecade(n, op, 100, 1e9, 10)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := ac.V("out")
	if err != nil {
		t.Fatal(err)
	}
	gainSP := measure.DCGainDB(tf)
	pmSP, err := measure.PhaseMarginDeg(ac.Freqs, tf)
	if err != nil {
		t.Fatal(err)
	}

	cfg := ota.DefaultConfig()
	perf, err := cfg.Evaluate(ota.NominalParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gainSP-perf.GainDB) > 0.05 {
		t.Errorf("netlist gain %.3f dB vs builder %.3f dB", gainSP, perf.GainDB)
	}
	if math.Abs(pmSP-perf.PMDeg) > 0.5 {
		t.Errorf("netlist PM %.2f deg vs builder %.2f deg", pmSP, perf.PMDeg)
	}
	// Device report sanity: all ten transistors saturated.
	rows := analysis.DeviceReport(n, op)
	if len(rows) != 10 {
		t.Fatalf("expected 10 MOSFETs, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Region != "saturation" {
			t.Errorf("%s in %s, want saturation", r.Name, r.Region)
		}
	}
}
