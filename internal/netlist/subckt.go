package netlist

import (
	"fmt"
	"strings"

	"analogyield/internal/circuit"
	"analogyield/internal/mos"
)

// subckt is a parsed .subckt definition: its port names and its body
// lines (still unexpanded text).
type subckt struct {
	name  string
	ports []string
	body  []string
}

// extractSubckts removes .subckt/.ends blocks from the line list and
// returns them keyed by lowercase name along with the remaining
// top-level lines. Nested .subckt definitions are rejected (instances
// may nest; definitions may not).
func extractSubckts(lines []string, lineNos []int) (map[string]*subckt, []string, []int, error) {
	subs := make(map[string]*subckt)
	var outLines []string
	var outNos []int
	var cur *subckt
	curLine := 0
	for i, line := range lines {
		t := strings.TrimSpace(line)
		lower := strings.ToLower(t)
		switch {
		case strings.HasPrefix(lower, ".subckt"):
			if cur != nil {
				return nil, nil, nil, fmt.Errorf("netlist: line %d: nested .subckt definition", lineNos[i])
			}
			f := strings.Fields(t)
			if len(f) < 2 {
				return nil, nil, nil, fmt.Errorf("netlist: line %d: .subckt needs a name", lineNos[i])
			}
			cur = &subckt{name: strings.ToLower(f[1]), ports: f[2:]}
			curLine = lineNos[i]
		case strings.HasPrefix(lower, ".ends"):
			if cur == nil {
				return nil, nil, nil, fmt.Errorf("netlist: line %d: .ends without .subckt", lineNos[i])
			}
			if _, dup := subs[cur.name]; dup {
				return nil, nil, nil, fmt.Errorf("netlist: line %d: duplicate subcircuit %q", curLine, cur.name)
			}
			subs[cur.name] = cur
			cur = nil
		default:
			if cur != nil {
				cur.body = append(cur.body, line)
			} else {
				outLines = append(outLines, line)
				outNos = append(outNos, lineNos[i])
			}
		}
	}
	if cur != nil {
		return nil, nil, nil, fmt.Errorf("netlist: unterminated .subckt %q (line %d)", cur.name, curLine)
	}
	return subs, outLines, outNos, nil
}

// maxSubcktDepth bounds instance nesting (and catches recursion).
const maxSubcktDepth = 20

// expandInstance adds one X line's subcircuit contents to the netlist.
// prefix is the hierarchical path ("X1." for a top-level instance);
// nodeMap translates port names inside the definition to outer netlist
// node indices; all other nodes become "<prefix><name>".
func expandInstance(n *circuit.Netlist, line string, subs map[string]*subckt,
	models map[string]mos.Params, prefix string, outerMap map[string]int, depth int) error {
	if depth > maxSubcktDepth {
		return fmt.Errorf("subcircuit nesting deeper than %d (recursive definition?)", maxSubcktDepth)
	}
	f := strings.Fields(line)
	if len(f) < 2 {
		return fmt.Errorf("%s: X element needs nodes and a subcircuit name", f[0])
	}
	instName := f[0]
	subName := strings.ToLower(f[len(f)-1])
	nodes := f[1 : len(f)-1]
	def, ok := subs[subName]
	if !ok {
		return fmt.Errorf("%s: unknown subcircuit %q", instName, f[len(f)-1])
	}
	if len(nodes) != len(def.ports) {
		return fmt.Errorf("%s: %d nodes for subcircuit %q with %d ports",
			instName, len(nodes), def.name, len(def.ports))
	}
	// Resolve the instance's outer node names in the *enclosing* scope:
	// through the enclosing port map where they name ports, otherwise as
	// prefixed internal nodes of the enclosing level.
	outerResolve := scopeResolver(n, prefix, outerMap)
	inner := make(map[string]int, len(def.ports))
	for i, port := range def.ports {
		inner[port] = outerResolve(nodes[i])
	}
	childPrefix := prefix + instName + "."
	childResolve := scopeResolver(n, childPrefix, inner)
	for _, bodyLine := range def.body {
		t := strings.TrimSpace(bodyLine)
		if t == "" || strings.HasPrefix(t, "*") || strings.HasPrefix(t, ".") {
			continue
		}
		if strings.ToUpper(t[:1]) == "X" {
			if err := expandInstance(n, t, subs, models, childPrefix, inner, depth+1); err != nil {
				return fmt.Errorf("%s: %w", instName, err)
			}
			continue
		}
		if err := parseDevice(n, t, models, childResolve, childPrefix); err != nil {
			return fmt.Errorf("%s: %w", instName, err)
		}
	}
	return nil
}

// scopeResolver resolves node names within one hierarchy level: ground
// aliases stay ground, port names map to the enclosing scope's nodes,
// everything else becomes a private node "<prefix><name>".
func scopeResolver(n *circuit.Netlist, prefix string, portMap map[string]int) func(string) int {
	return func(name string) int {
		if circuit.IsGroundName(name) {
			return circuit.Ground
		}
		if portMap != nil {
			if idx, ok := portMap[name]; ok {
				return idx
			}
		}
		return n.Node(prefix + name)
	}
}
