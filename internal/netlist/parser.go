// Package netlist parses a SPICE-like text format into circuit.Netlist
// values and serialises netlists back to text. The dialect covers what
// this repository's flows need:
//
//   - comment                      ; also "* ..." title lines
//     .title Symmetrical OTA
//     R1 a b 1k
//     C1 out 0 10p
//     L1 a b 1u
//     V1 in 0 DC 3.3 AC 1
//     I1 vdd bias DC 10u
//     E1 out 0 in 0 10               ; VCVS
//     G1 out 0 in 0 1m               ; VCCS
//     M1 d g s b nmos W=10u L=1u
//     .model fastn nmos VTO=0.45 KP=190u
//     .end
//
// Engineering suffixes f, p, n, u, m, k, meg, g, t are accepted on any
// number. Lines starting with '+' continue the previous line.
package netlist

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"analogyield/internal/circuit"
	"analogyield/internal/mos"
	"analogyield/internal/process"
)

// ParseValue converts a SPICE number with an optional engineering
// suffix ("10u", "2.2k", "1meg") to a float.
func ParseValue(s string) (float64, error) {
	t := strings.ToLower(strings.TrimSpace(s))
	if t == "" {
		return 0, fmt.Errorf("netlist: empty value")
	}
	mult := 1.0
	switch {
	case strings.HasSuffix(t, "meg"):
		mult, t = 1e6, t[:len(t)-3]
	case strings.HasSuffix(t, "mil"):
		mult, t = 25.4e-6, t[:len(t)-3]
	default:
		if n := len(t); n > 1 {
			switch t[n-1] {
			case 'f':
				mult, t = 1e-15, t[:n-1]
			case 'p':
				mult, t = 1e-12, t[:n-1]
			case 'n':
				mult, t = 1e-9, t[:n-1]
			case 'u':
				mult, t = 1e-6, t[:n-1]
			case 'm':
				mult, t = 1e-3, t[:n-1]
			case 'k':
				mult, t = 1e3, t[:n-1]
			case 'g':
				mult, t = 1e9, t[:n-1]
			case 't':
				mult, t = 1e12, t[:n-1]
			}
		}
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return 0, fmt.Errorf("netlist: bad number %q", s)
	}
	return v * mult, nil
}

// FormatValue renders a float with an engineering suffix where exact.
func FormatValue(v float64) string {
	abs := math.Abs(v)
	type unit struct {
		mult float64
		suf  string
	}
	units := []unit{{1e12, "t"}, {1e9, "g"}, {1e6, "meg"}, {1e3, "k"},
		{1, ""}, {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"}}
	for _, u := range units {
		if abs >= u.mult && abs < u.mult*1000 {
			return trimZeros(v/u.mult) + u.suf
		}
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func trimZeros(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// Parse reads a netlist from r. The returned netlist's Title comes from
// a leading comment or .title card.
func Parse(r io.Reader) (*circuit.Netlist, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var lines []string
	lineNos := []int{}
	no := 0
	for sc.Scan() {
		no++
		raw := strings.TrimRight(sc.Text(), " \t\r")
		if t := strings.TrimSpace(raw); t == "" {
			continue
		}
		if strings.HasPrefix(strings.TrimSpace(raw), "+") {
			if len(lines) == 0 {
				return nil, fmt.Errorf("netlist: line %d: continuation without a previous line", no)
			}
			lines[len(lines)-1] += " " + strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(raw), "+"))
			continue
		}
		lines = append(lines, raw)
		lineNos = append(lineNos, no)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	n := circuit.New("")
	models := map[string]mos.Params{
		"nmos": mos.NominalNMOS(),
		"pmos": mos.NominalPMOS(),
	}
	// Pull out .subckt definitions; their bodies are expanded at X lines.
	subs, lines, lineNos, err := extractSubckts(lines, lineNos)
	if err != nil {
		return nil, err
	}
	// First pass: models (so device lines can reference later .model
	// cards). Model cards inside subcircuit bodies are also honoured —
	// models are global in this dialect.
	scanModels := func(src []string, nos []int) error {
		for i, line := range src {
			t := strings.TrimSpace(line)
			if strings.HasPrefix(strings.ToLower(t), ".model") {
				no := 0
				if nos != nil {
					no = nos[i]
				}
				if err := parseModel(t, models); err != nil {
					return fmt.Errorf("netlist: line %d: %w", no, err)
				}
			}
		}
		return nil
	}
	if err := scanModels(lines, lineNos); err != nil {
		return nil, err
	}
	for _, sub := range subs {
		if err := scanModels(sub.body, nil); err != nil {
			return nil, err
		}
	}
	for i, line := range lines {
		t := strings.TrimSpace(line)
		lower := strings.ToLower(t)
		switch {
		case strings.HasPrefix(t, "*"):
			if n.Title == "" {
				n.Title = strings.TrimSpace(strings.TrimPrefix(t, "*"))
			}
			continue
		case strings.HasPrefix(lower, ".title"):
			n.Title = strings.TrimSpace(t[len(".title"):])
			continue
		case strings.HasPrefix(lower, ".model"):
			continue // handled in the first pass
		case strings.HasPrefix(lower, ".end"):
			return n, nil
		case strings.HasPrefix(t, "."):
			return nil, fmt.Errorf("netlist: line %d: unsupported card %q", lineNos[i], fields(t)[0])
		}
		if strings.ToUpper(t[:1]) == "X" {
			if err := expandInstance(n, t, subs, models, "", nil, 0); err != nil {
				return nil, fmt.Errorf("netlist: line %d: %w", lineNos[i], err)
			}
			continue
		}
		if err := parseDevice(n, t, models, topResolver(n), ""); err != nil {
			return nil, fmt.Errorf("netlist: line %d: %w", lineNos[i], err)
		}
	}
	return n, nil
}

// topResolver interns node names at the top level of the hierarchy.
func topResolver(n *circuit.Netlist) func(string) int {
	return func(name string) int { return n.Node(name) }
}

// ParseFile parses the named netlist file.
func ParseFile(path string) (*circuit.Netlist, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f)
}

// ParseString parses an inline netlist.
func ParseString(s string) (*circuit.Netlist, error) {
	return Parse(strings.NewReader(s))
}

func fields(s string) []string { return strings.Fields(s) }

func parseModel(line string, models map[string]mos.Params) error {
	f := fields(line)
	if len(f) < 3 {
		return fmt.Errorf(".model needs a name and a type")
	}
	name := strings.ToLower(f[1])
	var base mos.Params
	switch strings.ToLower(f[2]) {
	case "nmos":
		base = mos.NominalNMOS()
	case "pmos":
		base = mos.NominalPMOS()
	default:
		return fmt.Errorf("unknown model type %q", f[2])
	}
	for _, kv := range f[3:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("bad model parameter %q", kv)
		}
		v, err := ParseValue(val)
		if err != nil {
			return err
		}
		switch strings.ToUpper(key) {
		case "VTO":
			base.VTO = v
		case "KP":
			base.KP = v
		case "LAMBDAK":
			base.LambdaK = v
		case "GAMMA":
			base.Gamma = v
		case "PHI":
			base.Phi = v
		case "NSUB":
			base.NSub = v
		case "COX":
			base.Cox = v
		case "CGSO":
			base.CGSO = v
		case "CGDO":
			base.CGDO = v
		case "CJ":
			base.CJ = v
		case "LD":
			base.LD = v
		default:
			return fmt.Errorf("unknown model parameter %q", key)
		}
	}
	models[name] = base
	return nil
}

func parseDevice(n *circuit.Netlist, line string, models map[string]mos.Params, node func(string) int, prefix string) error {
	f := fields(line)
	name := prefix + f[0]
	kind := strings.ToUpper(f[0][:1])
	need := func(k int) error {
		if len(f) < k {
			return fmt.Errorf("%s: expected at least %d fields, got %d", name, k, len(f))
		}
		return nil
	}
	switch kind {
	case "R", "C", "L":
		if err := need(4); err != nil {
			return err
		}
		v, err := ParseValue(f[3])
		if err != nil {
			return err
		}
		a, b := node(f[1]), node(f[2])
		switch kind {
		case "R":
			if v <= 0 {
				return fmt.Errorf("%s: non-positive resistance", name)
			}
			return n.Add(&circuit.Resistor{Inst: name, A: a, B: b, R: v})
		case "C":
			return n.Add(&circuit.Capacitor{Inst: name, A: a, B: b, C: v})
		default:
			return n.Add(&circuit.Inductor{Inst: name, A: a, B: b, L: v})
		}
	case "V", "I":
		if err := need(3); err != nil {
			return err
		}
		pos, neg := node(f[1]), node(f[2])
		dc, ac := 0.0, 0.0
		rest := f[3:]
		for i := 0; i < len(rest); i++ {
			switch strings.ToUpper(rest[i]) {
			case "DC":
				if i+1 >= len(rest) {
					return fmt.Errorf("%s: DC needs a value", name)
				}
				v, err := ParseValue(rest[i+1])
				if err != nil {
					return err
				}
				dc = v
				i++
			case "AC":
				if i+1 >= len(rest) {
					return fmt.Errorf("%s: AC needs a value", name)
				}
				v, err := ParseValue(rest[i+1])
				if err != nil {
					return err
				}
				ac = v
				i++
			default:
				v, err := ParseValue(rest[i])
				if err != nil {
					return err
				}
				dc = v
			}
		}
		if kind == "V" {
			return n.Add(&circuit.VSource{Inst: name, Pos: pos, Neg: neg, DC: dc, ACMag: ac})
		}
		return n.Add(&circuit.ISource{Inst: name, Pos: pos, Neg: neg, DC: dc, ACMag: ac})
	case "E", "G":
		if err := need(6); err != nil {
			return err
		}
		v, err := ParseValue(f[5])
		if err != nil {
			return err
		}
		op, on := node(f[1]), node(f[2])
		ip, in := node(f[3]), node(f[4])
		if kind == "E" {
			return n.Add(&circuit.VCVS{Inst: name, OutP: op, OutN: on, InP: ip, InN: in, Gain: v})
		}
		return n.Add(&circuit.VCCS{Inst: name, OutP: op, OutN: on, InP: ip, InN: in, Gm: v})
	case "M":
		if err := need(6); err != nil {
			return err
		}
		model, ok := models[strings.ToLower(f[5])]
		if !ok {
			return fmt.Errorf("%s: unknown model %q", name, f[5])
		}
		w, l := 10e-6, 1e-6
		for _, kv := range f[6:] {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return fmt.Errorf("%s: bad parameter %q", name, kv)
			}
			v, err := ParseValue(val)
			if err != nil {
				return err
			}
			switch strings.ToUpper(key) {
			case "W":
				w = v
			case "L":
				l = v
			default:
				return fmt.Errorf("%s: unknown parameter %q", name, key)
			}
		}
		return n.Add(&circuit.MOSFET{Inst: name,
			D: node(f[1]), G: node(f[2]), S: node(f[3]), B: node(f[4]),
			W: w, L: l, Model: model})
	default:
		return fmt.Errorf("unsupported element %q", name)
	}
}

// Serialize renders a netlist back to the text dialect. MOSFET models
// are emitted as .model cards named after the instance.
func Serialize(n *circuit.Netlist, w io.Writer) error {
	bw := bufio.NewWriter(w)
	if n.Title != "" {
		fmt.Fprintf(bw, ".title %s\n", n.Title)
	}
	name := n.NodeName
	for _, d := range n.Devices() {
		switch dev := d.(type) {
		case *circuit.Resistor:
			fmt.Fprintf(bw, "%s %s %s %s\n", dev.Inst, name(dev.A), name(dev.B), FormatValue(dev.R))
		case *circuit.Capacitor:
			fmt.Fprintf(bw, "%s %s %s %s\n", dev.Inst, name(dev.A), name(dev.B), FormatValue(dev.C))
		case *circuit.Inductor:
			fmt.Fprintf(bw, "%s %s %s %s\n", dev.Inst, name(dev.A), name(dev.B), FormatValue(dev.L))
		case *circuit.VSource:
			fmt.Fprintf(bw, "%s %s %s DC %s AC %s\n", dev.Inst, name(dev.Pos), name(dev.Neg),
				FormatValue(dev.DC), FormatValue(dev.ACMag))
		case *circuit.ISource:
			fmt.Fprintf(bw, "%s %s %s DC %s AC %s\n", dev.Inst, name(dev.Pos), name(dev.Neg),
				FormatValue(dev.DC), FormatValue(dev.ACMag))
		case *circuit.VCVS:
			fmt.Fprintf(bw, "%s %s %s %s %s %s\n", dev.Inst, name(dev.OutP), name(dev.OutN),
				name(dev.InP), name(dev.InN), FormatValue(dev.Gain))
		case *circuit.VCCS:
			fmt.Fprintf(bw, "%s %s %s %s %s %s\n", dev.Inst, name(dev.OutP), name(dev.OutN),
				name(dev.InP), name(dev.InN), FormatValue(dev.Gm))
		case *circuit.MOSFET:
			mname := strings.ToLower(dev.Inst) + "_model"
			base := "nmos"
			if dev.Model.Class == process.PMOS {
				base = "pmos"
			}
			fmt.Fprintf(bw, ".model %s %s VTO=%s KP=%s LAMBDAK=%s GAMMA=%s\n",
				mname, base, FormatValue(dev.Model.VTO), FormatValue(dev.Model.KP),
				FormatValue(dev.Model.LambdaK), FormatValue(dev.Model.Gamma))
			fmt.Fprintf(bw, "%s %s %s %s %s %s W=%s L=%s\n", dev.Inst,
				name(dev.D), name(dev.G), name(dev.S), name(dev.B), mname,
				FormatValue(dev.W), FormatValue(dev.L))
		default:
			fmt.Fprintf(bw, "* (unserialisable device %s)\n", d.Name())
		}
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}
