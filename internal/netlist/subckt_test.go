package netlist

import (
	"math"
	"testing"

	"analogyield/internal/analysis"
	"analogyield/internal/circuit"
	"analogyield/internal/measure"
)

func TestSubcktBasicExpansion(t *testing.T) {
	src := `* divider as a subcircuit
.subckt div top out
R1 top out 1k
R2 out 0 2k
.ends
V1 in 0 DC 3
X1 in mid div
.end
`
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if n.Device("X1.R1") == nil || n.Device("X1.R2") == nil {
		t.Fatal("subcircuit devices not prefixed/expanded")
	}
	op, err := analysis.OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := op.V("mid")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-2) > 1e-6 {
		t.Errorf("V(mid) = %g, want 2", v)
	}
}

func TestSubcktTwoInstancesAreIndependent(t *testing.T) {
	src := `.subckt stage in out
R1 in out 1k
C1 out 0 1n
.ends
V1 a 0 DC 1 AC 1
X1 a b stage
X2 b c stage
.end
`
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	// Two independent internal device sets.
	if n.Device("X1.R1") == nil || n.Device("X2.R1") == nil {
		t.Fatal("instances share or lost devices")
	}
	// Cascaded RC: two-pole rolloff at high frequency.
	op, err := analysis.OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	fc := 1 / (2 * math.Pi * 1e3 * 1e-9)
	ac, err := analysis.AC(n, op, []float64{fc * 100})
	if err != nil {
		t.Fatal(err)
	}
	vc, _ := ac.V("c")
	vb, _ := ac.V("b")
	if measure.GainDB(vc[0]) > measure.GainDB(vb[0])-15 {
		t.Errorf("cascade not steeper: b %.1f dB, c %.1f dB",
			measure.GainDB(vb[0]), measure.GainDB(vc[0]))
	}
}

func TestSubcktInternalNodesPrivate(t *testing.T) {
	src := `.subckt cell a
R1 a internal 1k
R2 internal 0 1k
.ends
V1 x 0 DC 2
X1 x cell
X2 x cell
.end
`
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := n.NodeIndex("X1.internal"); !ok {
		t.Fatal("internal node not namespaced")
	}
	i1, _ := n.NodeIndex("X1.internal")
	i2, _ := n.NodeIndex("X2.internal")
	if i1 == i2 {
		t.Fatal("instances share an internal node")
	}
	// A bare "internal" node must not exist at top level.
	if _, ok := n.NodeIndex("internal"); ok {
		t.Fatal("internal node leaked to top level")
	}
}

func TestSubcktNested(t *testing.T) {
	src := `.subckt leaf a b
R1 a b 500
.ends
.subckt branch x y
X1 x m leaf
X2 m y leaf
.ends
V1 in 0 DC 1
Xtop in out branch
Rload out 0 1k
.end
`
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if n.Device("Xtop.X1.R1") == nil || n.Device("Xtop.X2.R1") == nil {
		t.Fatal("nested instances not expanded")
	}
	op, err := analysis.OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 1 V through 500+500 into 1k: divider gives 0.5 V.
	v, _ := op.V("out")
	if math.Abs(v-0.5) > 1e-6 {
		t.Errorf("V(out) = %g, want 0.5", v)
	}
}

func TestSubcktWithMOSAndModel(t *testing.T) {
	src := `.model myn nmos VTO=0.45
.subckt csamp g d vdd
RD vdd d 20k
M1 d g 0 0 myn W=10u L=1u
.ends
VDD vdd 0 DC 3.3
VG g 0 DC 0.8 AC 1
X1 g out vdd csamp
.end
`
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := n.Device("X1.M1").(*circuit.MOSFET)
	if !ok {
		t.Fatal("MOSFET missing inside subckt")
	}
	if m.Model.VTO != 0.45 {
		t.Error("model card not visible inside subckt")
	}
	op, err := analysis.OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := op.V("out")
	if v <= 0.1 || v >= 3.3 {
		t.Errorf("amp bias V(out) = %g", v)
	}
}

func TestSubcktErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"unknown", "X1 a b nosuch\n.end\n"},
		{"port mismatch", ".subckt s a b\nR1 a b 1k\n.ends\nX1 n1 s\n.end\n"},
		{"unterminated", ".subckt s a\nR1 a 0 1k\n"},
		{"stray ends", ".ends\n"},
		{"nested def", ".subckt a x\n.subckt b y\n.ends\n.ends\n"},
		{"duplicate", ".subckt s a\nR1 a 0 1k\n.ends\n.subckt s a\nR1 a 0 2k\n.ends\n"},
		{"recursive", ".subckt s a\nX1 a s\n.ends\nX1 top s\n.end\n"},
	}
	for _, c := range cases {
		if _, err := ParseString(c.src); err == nil {
			t.Errorf("%s: accepted\n%s", c.name, c.src)
		}
	}
}

func TestSubcktGroundInsideBody(t *testing.T) {
	// Ground referenced inside a subckt stays global ground.
	src := `.subckt s a
R1 a gnd 1k
.ends
V1 x 0 DC 1
X1 x s
.end
`
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	op, err := analysis.OP(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Current flows: V(x)=1 through 1k to ground.
	v, _ := op.V("x")
	if v != 1 {
		t.Errorf("V(x) = %g", v)
	}
	if _, ok := n.NodeIndex("X1.gnd"); ok {
		t.Error("ground was namespaced")
	}
}
