package ga

import (
	"context"
	"errors"
	"testing"
)

func TestRunCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{GenomeLen: 4, PopSize: 10, Generations: 20, Seed: 1}
	res, err := Run(ctx, cfg, EvaluatorFunc(sphere), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("partial result not returned")
	}
	if res.Evaluations != 0 || len(res.Archive) != 0 {
		t.Errorf("pre-cancelled run evaluated anyway: %d evals", res.Evaluations)
	}
}

func TestRunCancelMidRun(t *testing.T) {
	// Cancel from the generation hook: the run must stop before the next
	// generation's evaluation (one-generation cancellation latency).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const pop = 10
	cfg := Config{GenomeLen: 4, PopSize: pop, Generations: 50, Seed: 1}
	hooks := &Hooks{OnGeneration: func(gen int, _ []Individual) {
		if gen == 3 {
			cancel()
		}
	}}
	res, err := Run(ctx, cfg, EvaluatorFunc(sphere), hooks)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Evaluations != 3*pop {
		t.Errorf("evaluations after cancel at gen 3 = %d, want %d", res.Evaluations, 3*pop)
	}
	if len(res.Archive) != 3*pop {
		t.Errorf("partial archive = %d entries, want %d", len(res.Archive), 3*pop)
	}
	if len(res.FinalPop) != pop {
		t.Errorf("FinalPop not preserved: %d individuals", len(res.FinalPop))
	}
	if res.Best.Genome == nil {
		t.Error("best-so-far lost on cancellation")
	}
}

func TestRunNilContext(t *testing.T) {
	cfg := Config{GenomeLen: 3, PopSize: 8, Generations: 4, Seed: 1}
	//lint:ignore SA1012 nil ctx tolerated by design for callers predating the ctx API
	res, err := Run(nil, cfg, EvaluatorFunc(sphere), nil) //nolint:staticcheck
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 32 {
		t.Errorf("evaluations = %d", res.Evaluations)
	}
}
