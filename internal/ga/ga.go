// Package ga implements a real-coded genetic algorithm over genomes
// normalised to [0,1]: tournament selection, single-point and blend
// crossover, Gaussian mutation, elitism, and a full evaluation archive.
//
// The paper's WBGA (weight-based GA, internal/wbga) builds on this
// engine; the archive is what the Pareto-front extraction step consumes
// ("the previous optimisation step results in a number of optimal and
// non-optimal solutions").
package ga

import (
	"context"
	"fmt"
	"math/rand"
)

// SelectionKind selects the parent-selection operator.
type SelectionKind int

const (
	// Tournament picks the best of TournamentK random individuals
	// (default; robust to fitness scaling).
	Tournament SelectionKind = iota
	// Roulette samples parents with probability proportional to their
	// fitness offset above the population minimum (classic
	// fitness-proportionate selection, as in Goldberg).
	Roulette
)

// CrossoverKind selects the recombination operator.
type CrossoverKind int

const (
	// SinglePoint swaps gene tails at a random cut, matching the classic
	// GA string treatment of Goldberg that the paper cites.
	SinglePoint CrossoverKind = iota
	// Blend (BLX-0.5) samples children uniformly from an interval
	// stretched around the parents — often better on continuous spaces.
	Blend
)

// Config parameterises a run. Zero fields take the documented defaults.
type Config struct {
	GenomeLen   int // required
	PopSize     int // default 100
	Generations int // default 100
	// CrossoverRate is the probability a selected pair recombines
	// (default 0.9).
	CrossoverRate float64
	// MutationRate is the per-gene mutation probability
	// (default 1/GenomeLen).
	MutationRate float64
	// MutationSigma is the Gaussian mutation standard deviation in
	// normalised units (default 0.08).
	MutationSigma float64
	// Selection picks the parent-selection operator (default Tournament).
	Selection SelectionKind
	// TournamentK is the tournament size (default 2).
	TournamentK int
	// Elitism is the number of best individuals copied unchanged into
	// the next generation (default 1).
	Elitism int
	// Crossover selects the operator (default SinglePoint).
	Crossover CrossoverKind
	// Seed makes runs reproducible. A zero seed is used as-is (runs are
	// always deterministic).
	Seed int64
	// KeepArchive records every evaluated individual (default true via
	// Run; set SkipArchive to disable).
	SkipArchive bool
}

func (c Config) withDefaults() (Config, error) {
	if c.GenomeLen <= 0 {
		return c, fmt.Errorf("ga: GenomeLen must be positive")
	}
	if c.PopSize <= 0 {
		c.PopSize = 100
	}
	if c.PopSize < 2 {
		return c, fmt.Errorf("ga: PopSize must be at least 2")
	}
	if c.Generations <= 0 {
		c.Generations = 100
	}
	if c.CrossoverRate <= 0 {
		c.CrossoverRate = 0.9
	}
	if c.MutationRate <= 0 {
		c.MutationRate = 1 / float64(c.GenomeLen)
	}
	if c.MutationSigma <= 0 {
		c.MutationSigma = 0.08
	}
	if c.TournamentK <= 0 {
		c.TournamentK = 2
	}
	if c.Elitism < 0 || c.Elitism >= c.PopSize {
		return c, fmt.Errorf("ga: Elitism %d out of range for population %d", c.Elitism, c.PopSize)
	}
	if c.Elitism == 0 {
		c.Elitism = 1
	}
	return c, nil
}

// Individual couples a genome with its fitness (higher is better).
type Individual struct {
	Genome  []float64
	Fitness float64
}

// PopulationEvaluator scores a whole generation at once. Evaluating by
// population (rather than one individual at a time) lets implementations
// parallelise the underlying circuit simulations and lets the WBGA
// normalise fitness over the evaluation archive.
type PopulationEvaluator interface {
	EvaluatePopulation(genomes [][]float64) []float64
}

// EvaluatorFunc adapts a per-individual fitness function.
type EvaluatorFunc func(genome []float64) float64

// EvaluatePopulation scores each genome independently.
func (f EvaluatorFunc) EvaluatePopulation(genomes [][]float64) []float64 {
	out := make([]float64, len(genomes))
	for i, g := range genomes {
		out[i] = f(g)
	}
	return out
}

// Result is the outcome of a run.
type Result struct {
	Best        Individual
	FinalPop    []Individual
	Archive     []Individual // every evaluated individual, in order
	Evaluations int
}

// OnGeneration, when non-nil in Run's hooks, observes each generation.
type Hooks struct {
	// OnGeneration is called after each generation is evaluated with the
	// 1-based generation number and the evaluated population.
	OnGeneration func(gen int, pop []Individual)
}

// Run executes the GA and returns the best individual found along with
// the archive of all evaluations.
//
// Cancellation is cooperative with one-generation granularity: ctx is
// checked before every generation's evaluation, and a cancelled run
// returns the partial Result accumulated so far alongside ctx.Err().
func Run(ctx context.Context, cfg Config, eval PopulationEvaluator, hooks *Hooks) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if eval == nil {
		return nil, fmt.Errorf("ga: nil evaluator")
	}
	rng := rand.New(rand.NewSource(c.Seed))
	pop := make([]Individual, c.PopSize)
	for i := range pop {
		g := make([]float64, c.GenomeLen)
		for j := range g {
			g[j] = rng.Float64()
		}
		pop[i] = Individual{Genome: g}
	}

	res := &Result{Best: Individual{Fitness: negInf}}
	evaluate := func(p []Individual) {
		genomes := make([][]float64, len(p))
		for i := range p {
			genomes[i] = p[i].Genome
		}
		fits := eval.EvaluatePopulation(genomes)
		for i := range p {
			p[i].Fitness = fits[i]
			if !c.SkipArchive {
				res.Archive = append(res.Archive, Individual{
					Genome:  append([]float64(nil), p[i].Genome...),
					Fitness: fits[i],
				})
			}
			if fits[i] > res.Best.Fitness {
				res.Best = Individual{
					Genome:  append([]float64(nil), p[i].Genome...),
					Fitness: fits[i],
				}
			}
		}
		res.Evaluations += len(p)
	}

	if err := ctx.Err(); err != nil {
		res.FinalPop = pop
		return res, err
	}
	evaluate(pop)
	if hooks != nil && hooks.OnGeneration != nil {
		hooks.OnGeneration(1, pop)
	}
	for gen := 2; gen <= c.Generations; gen++ {
		if err := ctx.Err(); err != nil {
			res.FinalPop = pop
			return res, err
		}
		next := make([]Individual, 0, c.PopSize)
		// Elitism: carry over the best of the current population.
		elite := bestK(pop, c.Elitism)
		for _, e := range elite {
			next = append(next, Individual{Genome: append([]float64(nil), e.Genome...)})
		}
		sel := makeSelector(c, pop, rng)
		for len(next) < c.PopSize {
			p1 := sel()
			p2 := sel()
			c1 := append([]float64(nil), p1.Genome...)
			c2 := append([]float64(nil), p2.Genome...)
			if rng.Float64() < c.CrossoverRate {
				crossover(c.Crossover, c1, c2, rng)
			}
			mutate(c1, c.MutationRate, c.MutationSigma, rng)
			mutate(c2, c.MutationRate, c.MutationSigma, rng)
			next = append(next, Individual{Genome: c1})
			if len(next) < c.PopSize {
				next = append(next, Individual{Genome: c2})
			}
		}
		pop = next
		evaluate(pop)
		if hooks != nil && hooks.OnGeneration != nil {
			hooks.OnGeneration(gen, pop)
		}
	}
	res.FinalPop = pop
	return res, nil
}

const negInf = -1e308

// bestK returns the k highest-fitness individuals (k small; linear scan).
func bestK(pop []Individual, k int) []Individual {
	out := make([]Individual, 0, k)
	used := make([]bool, len(pop))
	for n := 0; n < k; n++ {
		bi, bf := -1, negInf
		for i := range pop {
			if !used[i] && pop[i].Fitness > bf {
				bi, bf = i, pop[i].Fitness
			}
		}
		if bi < 0 {
			break
		}
		used[bi] = true
		out = append(out, pop[bi])
	}
	return out
}

// makeSelector builds the configured parent-selection closure over one
// generation's population.
func makeSelector(c Config, pop []Individual, rng *rand.Rand) func() *Individual {
	if c.Selection == Roulette {
		// Offset fitnesses so the worst individual has weight ~0; a
		// degenerate flat population falls back to uniform sampling.
		minF, maxF := pop[0].Fitness, pop[0].Fitness
		for _, ind := range pop[1:] {
			if ind.Fitness < minF {
				minF = ind.Fitness
			}
			if ind.Fitness > maxF {
				maxF = ind.Fitness
			}
		}
		span := maxF - minF
		if span <= 0 {
			return func() *Individual { return &pop[rng.Intn(len(pop))] }
		}
		cum := make([]float64, len(pop))
		total := 0.0
		for i := range pop {
			total += (pop[i].Fitness - minF) + 0.01*span
			cum[i] = total
		}
		return func() *Individual {
			r := rng.Float64() * total
			for i := range cum {
				if r <= cum[i] {
					return &pop[i]
				}
			}
			return &pop[len(pop)-1]
		}
	}
	return func() *Individual { return tournament(pop, c.TournamentK, rng) }
}

func tournament(pop []Individual, k int, rng *rand.Rand) *Individual {
	best := &pop[rng.Intn(len(pop))]
	for i := 1; i < k; i++ {
		c := &pop[rng.Intn(len(pop))]
		if c.Fitness > best.Fitness {
			best = c
		}
	}
	return best
}

func crossover(kind CrossoverKind, a, b []float64, rng *rand.Rand) {
	switch kind {
	case Blend:
		const alpha = 0.5
		for i := range a {
			lo, hi := a[i], b[i]
			if lo > hi {
				lo, hi = hi, lo
			}
			span := hi - lo
			l, h := lo-alpha*span, hi+alpha*span
			a[i] = clamp01(l + rng.Float64()*(h-l))
			b[i] = clamp01(l + rng.Float64()*(h-l))
		}
	default: // SinglePoint
		if len(a) < 2 {
			return
		}
		cut := 1 + rng.Intn(len(a)-1)
		for i := cut; i < len(a); i++ {
			a[i], b[i] = b[i], a[i]
		}
	}
}

func mutate(g []float64, rate, sigma float64, rng *rand.Rand) {
	for i := range g {
		if rng.Float64() < rate {
			g[i] = clamp01(g[i] + rng.NormFloat64()*sigma)
		}
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
