package ga

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// sphere is a maximisation fitness peaking at the genome centre.
func sphere(g []float64) float64 {
	s := 0.0
	for _, x := range g {
		d := x - 0.5
		s += d * d
	}
	return -s
}

func TestRunOptimisesSphere(t *testing.T) {
	cfg := Config{GenomeLen: 6, PopSize: 40, Generations: 60, Seed: 1}
	res, err := Run(context.Background(), cfg, EvaluatorFunc(sphere), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Fitness < -0.01 {
		t.Errorf("best fitness = %g, want > -0.01", res.Best.Fitness)
	}
	for _, x := range res.Best.Genome {
		if math.Abs(x-0.5) > 0.15 {
			t.Errorf("best gene %g far from optimum 0.5", x)
		}
	}
}

func TestRunDeterministicBySeed(t *testing.T) {
	cfg := Config{GenomeLen: 4, PopSize: 20, Generations: 15, Seed: 7}
	a, err := Run(context.Background(), cfg, EvaluatorFunc(sphere), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), cfg, EvaluatorFunc(sphere), nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Best.Fitness != b.Best.Fitness {
		t.Error("same seed gave different best fitness")
	}
	for i := range a.Best.Genome {
		if a.Best.Genome[i] != b.Best.Genome[i] {
			t.Fatal("same seed gave different best genome")
		}
	}
	cfg.Seed = 8
	c, err := Run(context.Background(), cfg, EvaluatorFunc(sphere), nil)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Best.Genome {
		if a.Best.Genome[i] != c.Best.Genome[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds gave identical genomes (suspicious)")
	}
}

func TestArchiveSize(t *testing.T) {
	cfg := Config{GenomeLen: 3, PopSize: 10, Generations: 5, Seed: 1}
	res, err := Run(context.Background(), cfg, EvaluatorFunc(sphere), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Archive) != 50 {
		t.Errorf("archive has %d entries, want 50 (pop x generations)", len(res.Archive))
	}
	if res.Evaluations != 50 {
		t.Errorf("Evaluations = %d, want 50", res.Evaluations)
	}
}

func TestSkipArchive(t *testing.T) {
	cfg := Config{GenomeLen: 3, PopSize: 10, Generations: 5, Seed: 1, SkipArchive: true}
	res, err := Run(context.Background(), cfg, EvaluatorFunc(sphere), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Archive) != 0 {
		t.Error("SkipArchive did not suppress the archive")
	}
}

func TestElitismMonotoneBest(t *testing.T) {
	// With elitism, the best fitness per generation never decreases.
	cfg := Config{GenomeLen: 5, PopSize: 30, Generations: 25, Seed: 3, Elitism: 2}
	prevBest := math.Inf(-1)
	hooks := &Hooks{OnGeneration: func(gen int, pop []Individual) {
		best := math.Inf(-1)
		for _, ind := range pop {
			if ind.Fitness > best {
				best = ind.Fitness
			}
		}
		if best < prevBest-1e-12 {
			t.Errorf("generation %d best %g fell below previous %g", gen, best, prevBest)
		}
		prevBest = best
	}}
	if _, err := Run(context.Background(), cfg, EvaluatorFunc(sphere), hooks); err != nil {
		t.Fatal(err)
	}
}

func TestHooksSeeEveryGeneration(t *testing.T) {
	cfg := Config{GenomeLen: 2, PopSize: 8, Generations: 12, Seed: 1}
	var gens []int
	hooks := &Hooks{OnGeneration: func(gen int, pop []Individual) {
		gens = append(gens, gen)
		if len(pop) != 8 {
			t.Errorf("generation %d has %d individuals", gen, len(pop))
		}
	}}
	if _, err := Run(context.Background(), cfg, EvaluatorFunc(sphere), hooks); err != nil {
		t.Fatal(err)
	}
	if len(gens) != 12 || gens[0] != 1 || gens[11] != 12 {
		t.Errorf("hook generations = %v", gens)
	}
}

func TestBlendCrossoverOptimises(t *testing.T) {
	cfg := Config{GenomeLen: 6, PopSize: 40, Generations: 60, Seed: 2, Crossover: Blend}
	res, err := Run(context.Background(), cfg, EvaluatorFunc(sphere), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Fitness < -0.01 {
		t.Errorf("blend crossover best fitness = %g", res.Best.Fitness)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{GenomeLen: 0}, EvaluatorFunc(sphere), nil); err == nil {
		t.Error("GenomeLen 0 accepted")
	}
	if _, err := Run(context.Background(), Config{GenomeLen: 3, PopSize: 10, Elitism: 10}, EvaluatorFunc(sphere), nil); err == nil {
		t.Error("Elitism >= PopSize accepted")
	}
	if _, err := Run(context.Background(), Config{GenomeLen: 3}, nil, nil); err == nil {
		t.Error("nil evaluator accepted")
	}
}

func TestGenomesStayInUnitBox(t *testing.T) {
	cfg := Config{GenomeLen: 4, PopSize: 16, Generations: 30, Seed: 5,
		MutationRate: 0.5, MutationSigma: 0.5}
	hooks := &Hooks{OnGeneration: func(gen int, pop []Individual) {
		for _, ind := range pop {
			for _, g := range ind.Genome {
				if g < 0 || g > 1 {
					t.Fatalf("gene %g escaped [0,1]", g)
				}
			}
		}
	}}
	if _, err := Run(context.Background(), cfg, EvaluatorFunc(sphere), hooks); err != nil {
		t.Fatal(err)
	}
}

func TestMutationOperatorsProperty(t *testing.T) {
	// Property: mutate keeps genes in [0,1]; crossover preserves the
	// multiset of genes for SinglePoint.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, 8)
		b := make([]float64, 8)
		for i := range a {
			a[i] = rng.Float64()
			b[i] = rng.Float64()
		}
		sumBefore := 0.0
		for i := range a {
			sumBefore += a[i] + b[i]
		}
		crossover(SinglePoint, a, b, rng)
		sumAfter := 0.0
		for i := range a {
			sumAfter += a[i] + b[i]
		}
		if math.Abs(sumBefore-sumAfter) > 1e-9 {
			return false
		}
		mutate(a, 1.0, 0.5, rng)
		for _, g := range a {
			if g < 0 || g > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBestK(t *testing.T) {
	pop := []Individual{{Fitness: 1}, {Fitness: 5}, {Fitness: 3}}
	top := bestK(pop, 2)
	if len(top) != 2 || top[0].Fitness != 5 || top[1].Fitness != 3 {
		t.Errorf("bestK = %+v", top)
	}
	if got := bestK(pop, 10); len(got) != 3 {
		t.Errorf("bestK over-request returned %d", len(got))
	}
}

func TestRouletteSelectionOptimises(t *testing.T) {
	cfg := Config{GenomeLen: 6, PopSize: 40, Generations: 80, Seed: 9, Selection: Roulette}
	res, err := Run(context.Background(), cfg, EvaluatorFunc(sphere), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Fitness < -0.05 {
		t.Errorf("roulette best fitness = %g, want > -0.05", res.Best.Fitness)
	}
}

func TestRouletteFlatPopulation(t *testing.T) {
	// A constant fitness landscape must not break roulette selection.
	flat := EvaluatorFunc(func(g []float64) float64 { return 1 })
	cfg := Config{GenomeLen: 3, PopSize: 10, Generations: 5, Seed: 2, Selection: Roulette}
	if _, err := Run(context.Background(), cfg, flat, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSelectorPrefersFit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pop := []Individual{{Fitness: 0}, {Fitness: 10}}
	sel := makeSelector(Config{Selection: Roulette}, pop, rng)
	hits := 0
	for i := 0; i < 1000; i++ {
		if sel().Fitness == 10 {
			hits++
		}
	}
	if hits < 800 {
		t.Errorf("fit individual selected only %d/1000 times", hits)
	}
}
