package yield

import (
	"math"
	"testing"
)

func TestFromWeightedSamples(t *testing.T) {
	specs := []Spec{{Name: "m", Sense: AtLeast, Bound: 2}}
	cols := []int{0}
	samples := [][]float64{{1}, {2}, {3}, nil}
	weights := []float64{1, 2, 3, 4}
	// Passing weight 5 of total 10 (the failed sample's weight stays in
	// the denominator).
	y, err := FromWeightedSamples(samples, weights, specs, cols)
	if err != nil {
		t.Fatal(err)
	}
	if y != 0.5 {
		t.Errorf("weighted yield = %g, want 0.5", y)
	}
	// Nil weights must agree with FromSamples exactly.
	yw, err := FromWeightedSamples(samples, nil, specs, cols)
	if err != nil {
		t.Fatal(err)
	}
	yu, err := FromSamples(samples, specs, cols)
	if err != nil {
		t.Fatal(err)
	}
	if yw != yu {
		t.Errorf("nil-weight FromWeightedSamples %g != FromSamples %g", yw, yu)
	}
	// Uniform non-unit weights must too (self-normalisation).
	yc, err := FromWeightedSamples(samples, []float64{7, 7, 7, 7}, specs, cols)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(yc-yu) > 1e-15 {
		t.Errorf("uniform-weight yield %g != unweighted %g", yc, yu)
	}
}

func TestFromWeightedSamplesErrors(t *testing.T) {
	specs := []Spec{{Sense: AtLeast, Bound: 0}}
	cols := []int{0}
	if _, err := FromWeightedSamples([][]float64{{1}}, []float64{1, 2}, specs, cols); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FromWeightedSamples(nil, []float64{}, specs, cols); err == nil {
		t.Error("empty sample set accepted")
	}
	if _, err := FromWeightedSamples([][]float64{{1}}, []float64{0}, specs, cols); err == nil {
		t.Error("zero total weight accepted")
	}
	if _, err := FromWeightedSamples([][]float64{{1}}, []float64{1}, specs, []int{3}); err == nil {
		t.Error("out-of-range column accepted")
	}
}

func TestESS(t *testing.T) {
	if ess := ESS([]float64{1, 1, 1, 1}); ess != 4 {
		t.Errorf("uniform ESS = %g, want 4", ess)
	}
	// One dominant weight collapses the ESS towards 1.
	if ess := ESS([]float64{100, 0.01, 0.01, 0.01}); ess > 1.01 {
		t.Errorf("degenerate ESS = %g, want ~1", ess)
	}
	if ESS(nil) != 0 || ESS([]float64{}) != 0 {
		t.Error("empty weight vector should have ESS 0")
	}
	// Scale invariance.
	a := ESS([]float64{1, 2, 3})
	b := ESS([]float64{10, 20, 30})
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("ESS not scale-invariant: %g vs %g", a, b)
	}
}
