// Package yield implements the specification and guard-banding
// arithmetic of the paper's yield-targeted design step: given a required
// performance bound and the ±Δ% variation read from the variation table,
// compute the new (guard-banded) performance target that still meets the
// bound at the process extremes, then estimate yield against a spec.
package yield

import (
	"fmt"
	"math"
)

// Sense is the direction of a specification bound.
type Sense int

const (
	// AtLeast means the performance must be >= Bound (e.g. gain > 50 dB).
	AtLeast Sense = iota
	// AtMost means the performance must be <= Bound (e.g. power < 1 mW).
	AtMost
)

// String names the sense.
func (s Sense) String() string {
	if s == AtMost {
		return "<="
	}
	return ">="
}

// Spec is one performance requirement.
type Spec struct {
	Name  string
	Sense Sense
	Bound float64
}

// Pass reports whether a measured value satisfies the spec.
func (s Spec) Pass(v float64) bool {
	if s.Sense == AtMost {
		return v <= s.Bound
	}
	return v >= s.Bound
}

// String renders the spec for reports.
func (s Spec) String() string {
	return fmt.Sprintf("%s %s %g", s.Name, s.Sense, s.Bound)
}

// GuardBand returns the new performance target that guarantees the spec
// at the ±deltaPct process extremes, exactly the paper's Table 3
// arithmetic: a required gain of 50 dB with Δ = 0.51% becomes a target
// of 50·(1 + 0.51/100) = 50.26 dB, so that even the −Δ extreme
// (50.26·(1−0.0051) ≈ 50.0) still meets the bound.
func GuardBand(spec Spec, deltaPct float64) float64 {
	if deltaPct < 0 {
		deltaPct = -deltaPct
	}
	f := deltaPct / 100
	if spec.Sense == AtMost {
		return spec.Bound * (1 - f)
	}
	return spec.Bound * (1 + f)
}

// Range returns the ±deltaPct interval around a nominal value — the
// "actual gain may vary from 49.75 dB to 50.26 dB" statement of the
// paper's worked example.
func Range(nominal, deltaPct float64) (lo, hi float64) {
	f := deltaPct / 100
	if f < 0 {
		f = -f
	}
	a := nominal * (1 - f)
	b := nominal * (1 + f)
	if a > b {
		a, b = b, a
	}
	return a, b
}

// PredictNormal estimates the probability that a single performance
// meets its spec without running Monte Carlo, from the quantities the
// behavioural model already stores: the nominal performance at the
// selected design and its variation figure deltaPct = 100·3σ/|µ|.
// Inverting that definition gives σ = |nominal|·deltaPct/300; under the
// variation model's normal assumption the pass probability is the
// Gaussian tail on the passing side of the bound. A zero-width
// distribution degenerates to 1 or 0 according to Spec.Pass.
func PredictNormal(spec Spec, nominal, deltaPct float64) float64 {
	sigma := math.Abs(nominal) * math.Abs(deltaPct) / 300
	if sigma == 0 {
		if spec.Pass(nominal) {
			return 1
		}
		return 0
	}
	z := (nominal - spec.Bound) / sigma
	if spec.Sense == AtMost {
		z = -z
	}
	return normCDF(z)
}

// PredictJoint multiplies per-spec PredictNormal probabilities — the
// independence approximation the guard-banding flow already makes when
// it treats each performance's Δ% separately. specs[k] is evaluated
// against nominal[k]/deltaPct[k].
func PredictJoint(specs []Spec, nominal, deltaPct []float64) (float64, error) {
	if len(specs) != len(nominal) || len(specs) != len(deltaPct) {
		return 0, fmt.Errorf("yield: %d specs, %d nominals, %d deltas", len(specs), len(nominal), len(deltaPct))
	}
	p := 1.0
	for k, s := range specs {
		p *= PredictNormal(s, nominal[k], deltaPct[k])
	}
	return p, nil
}

// normCDF is the standard normal CDF Φ(z).
func normCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// FromSamples estimates yield from Monte Carlo metric vectors: the
// fraction of samples whose cols[k]-th metric passes specs[k] for all k.
// Nil (failed) samples count as failing.
func FromSamples(samples [][]float64, specs []Spec, cols []int) (float64, error) {
	if len(specs) != len(cols) {
		return 0, fmt.Errorf("yield: %d specs but %d column indices", len(specs), len(cols))
	}
	if len(samples) == 0 {
		return 0, fmt.Errorf("yield: no samples")
	}
	pass := 0
sample:
	for _, s := range samples {
		if s == nil {
			continue
		}
		for k, spec := range specs {
			c := cols[k]
			if c < 0 || c >= len(s) {
				return 0, fmt.Errorf("yield: column %d out of range (sample width %d)", c, len(s))
			}
			if !spec.Pass(s[c]) {
				continue sample
			}
		}
		pass++
	}
	return float64(pass) / float64(len(samples)), nil
}

// FromWeightedSamples is the importance-sampling analogue of
// FromSamples: the self-normalised estimate Σ wᵢ·passᵢ / Σ wᵢ, where
// the weights are the likelihood ratios p/q the sampler reported
// (montecarlo.Result.Weights). Nil (failed) samples keep their weight
// in the denominator — the same pessimistic convention FromSamples uses
// for the sample count. A nil weights slice selects unit weights,
// reducing exactly to FromSamples.
func FromWeightedSamples(samples [][]float64, weights []float64, specs []Spec, cols []int) (float64, error) {
	if weights == nil {
		return FromSamples(samples, specs, cols)
	}
	if len(weights) != len(samples) {
		return 0, fmt.Errorf("yield: %d samples but %d weights", len(samples), len(weights))
	}
	if len(specs) != len(cols) {
		return 0, fmt.Errorf("yield: %d specs but %d column indices", len(specs), len(cols))
	}
	if len(samples) == 0 {
		return 0, fmt.Errorf("yield: no samples")
	}
	var sw, swPass float64
sample:
	for i, s := range samples {
		sw += weights[i]
		if s == nil {
			continue
		}
		for k, spec := range specs {
			c := cols[k]
			if c < 0 || c >= len(s) {
				return 0, fmt.Errorf("yield: column %d out of range (sample width %d)", c, len(s))
			}
			if !spec.Pass(s[c]) {
				continue sample
			}
		}
		swPass += weights[i]
	}
	if sw <= 0 {
		return 0, fmt.Errorf("yield: total importance weight %g is not positive", sw)
	}
	return swPass / sw, nil
}

// ESS is the effective sample size (Σw)²/Σw² of an importance-sampling
// weight vector — the number of plain Monte Carlo samples carrying the
// same estimator information. It equals len(weights) for uniform
// weights and degrades as the weights spread; a nil or empty vector has
// ESS 0.
func ESS(weights []float64) float64 {
	var sw, sw2 float64
	for _, w := range weights {
		sw += w
		sw2 += w * w
	}
	if sw2 == 0 {
		return 0
	}
	return sw * sw / sw2
}

// WilsonInterval returns the 95% Wilson score confidence interval for a
// yield estimated from k passes out of n Monte Carlo samples. The paper
// reports "100% yield at 500 samples"; the Wilson interval quantifies
// what that actually guarantees (e.g. 500/500 → [0.9924, 1.0]).
func WilsonInterval(passes, samples int) (lo, hi float64, err error) {
	if samples <= 0 {
		return 0, 0, fmt.Errorf("yield: non-positive sample count %d", samples)
	}
	if passes < 0 || passes > samples {
		return 0, 0, fmt.Errorf("yield: %d passes out of %d samples", passes, samples)
	}
	const z = 1.959963984540054 // 97.5th percentile of the normal
	n := float64(samples)
	p := float64(passes) / n
	denom := 1 + z*z/n
	centre := (p + z*z/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z*z/(4*n*n))
	lo = centre - half
	hi = centre + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi, nil
}
