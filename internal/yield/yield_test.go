package yield

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSpecPass(t *testing.T) {
	gain := Spec{Name: "gain", Sense: AtLeast, Bound: 50}
	if !gain.Pass(50) || !gain.Pass(51) || gain.Pass(49.9) {
		t.Error("AtLeast semantics wrong")
	}
	pwr := Spec{Name: "power", Sense: AtMost, Bound: 1e-3}
	if !pwr.Pass(1e-3) || !pwr.Pass(0.5e-3) || pwr.Pass(2e-3) {
		t.Error("AtMost semantics wrong")
	}
}

func TestSpecString(t *testing.T) {
	s := Spec{Name: "gain", Sense: AtLeast, Bound: 50}
	if s.String() != "gain >= 50" {
		t.Errorf("String = %q", s.String())
	}
	s2 := Spec{Name: "p", Sense: AtMost, Bound: 1}
	if s2.String() != "p <= 1" {
		t.Errorf("String = %q", s2.String())
	}
}

func TestGuardBandPaperExample(t *testing.T) {
	// Paper Table 3: gain > 50 dB with Δ = 0.51% → target 50.26 dB
	// (the paper rounds 50.255 to 50.26).
	got := GuardBand(Spec{Name: "gain", Sense: AtLeast, Bound: 50}, 0.51)
	if math.Abs(got-50.255) > 1e-9 {
		t.Errorf("guard-banded gain = %g, want 50.255", got)
	}
	// Paper Table 3: PM > 74 deg with Δ = 1.71% → target 75.27 deg
	// (74·1.0171 = 75.2654 ≈ 75.27).
	got = GuardBand(Spec{Name: "pm", Sense: AtLeast, Bound: 74}, 1.71)
	if math.Abs(got-75.2654) > 1e-3 {
		t.Errorf("guard-banded PM = %g, want ~75.27", got)
	}
}

func TestGuardBandAtMost(t *testing.T) {
	got := GuardBand(Spec{Sense: AtMost, Bound: 100}, 2)
	if math.Abs(got-98) > 1e-12 {
		t.Errorf("AtMost guard band = %g, want 98", got)
	}
}

func TestGuardBandNegativeDelta(t *testing.T) {
	a := GuardBand(Spec{Sense: AtLeast, Bound: 50}, 1)
	b := GuardBand(Spec{Sense: AtLeast, Bound: 50}, -1)
	if a != b {
		t.Error("negative delta should behave as its magnitude")
	}
}

func TestGuardBandProperty(t *testing.T) {
	// Property: the worst-case extreme of the guard-banded target meets
	// the original bound to first order. The paper's multiplicative
	// guard band is first-order exact: target·(1−δ) = bound·(1−δ²), so
	// allow the δ² term.
	f := func(boundSeed, deltaSeed uint8) bool {
		bound := 1 + float64(boundSeed)    // 1..256
		delta := float64(deltaSeed) / 25.5 // 0..10 %
		spec := Spec{Sense: AtLeast, Bound: bound}
		target := GuardBand(spec, delta)
		lo, _ := Range(target, delta)
		secondOrder := bound * (delta / 100) * (delta / 100)
		return lo >= bound-secondOrder-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRange(t *testing.T) {
	lo, hi := Range(50, 0.51)
	if math.Abs(lo-49.745) > 1e-9 || math.Abs(hi-50.255) > 1e-9 {
		t.Errorf("Range = (%g, %g), want (49.745, 50.255)", lo, hi)
	}
	// Negative nominal keeps lo <= hi.
	lo, hi = Range(-50, 1)
	if lo > hi {
		t.Error("Range inverted for negative nominal")
	}
}

func TestFromSamples(t *testing.T) {
	samples := [][]float64{
		{50.5, 75}, // pass both
		{49.0, 80}, // fail gain
		{51.0, 70}, // fail pm
		nil,        // failed sim counts as fail
		{50.0, 74}, // pass both (boundaries inclusive)
	}
	specs := []Spec{
		{Name: "gain", Sense: AtLeast, Bound: 50},
		{Name: "pm", Sense: AtLeast, Bound: 74},
	}
	y, err := FromSamples(samples, specs, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y-0.4) > 1e-12 {
		t.Errorf("yield = %g, want 0.4", y)
	}
}

func TestFromSamplesValidation(t *testing.T) {
	specs := []Spec{{Sense: AtLeast, Bound: 0}}
	if _, err := FromSamples(nil, specs, []int{0}); err == nil {
		t.Error("no samples accepted")
	}
	if _, err := FromSamples([][]float64{{1}}, specs, []int{0, 1}); err == nil {
		t.Error("spec/col mismatch accepted")
	}
	if _, err := FromSamples([][]float64{{1}}, specs, []int{5}); err == nil {
		t.Error("out-of-range column accepted")
	}
}

func TestWilsonIntervalPaperCase(t *testing.T) {
	// 500/500 passes: the paper's "100% yield" claim corresponds to a
	// 95% lower bound of ~99.2%.
	lo, hi, err := WilsonInterval(500, 500)
	if err != nil {
		t.Fatal(err)
	}
	if hi != 1 {
		t.Errorf("hi = %g, want 1", hi)
	}
	if lo < 0.99 || lo > 0.995 {
		t.Errorf("lo = %g, want ~0.9924", lo)
	}
}

func TestWilsonIntervalHalf(t *testing.T) {
	lo, hi, err := WilsonInterval(50, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo < 0.5 && 0.5 < hi) {
		t.Errorf("interval [%g, %g] should bracket 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Errorf("interval width %g too wide for n=100", hi-lo)
	}
}

func TestWilsonIntervalShrinksWithN(t *testing.T) {
	lo1, hi1, _ := WilsonInterval(90, 100)
	lo2, hi2, _ := WilsonInterval(900, 1000)
	if (hi2 - lo2) >= (hi1 - lo1) {
		t.Error("interval should shrink with sample count")
	}
}

func TestWilsonIntervalValidation(t *testing.T) {
	if _, _, err := WilsonInterval(1, 0); err == nil {
		t.Error("zero samples accepted")
	}
	if _, _, err := WilsonInterval(5, 3); err == nil {
		t.Error("passes > samples accepted")
	}
	if _, _, err := WilsonInterval(-1, 3); err == nil {
		t.Error("negative passes accepted")
	}
}

func TestPredictNormal(t *testing.T) {
	spec := Spec{Name: "gain", Sense: AtLeast, Bound: 50}
	// Nominal exactly at the bound: half the population passes.
	if p := PredictNormal(spec, 50, 0.51); math.Abs(p-0.5) > 1e-12 {
		t.Errorf("at-bound probability = %g, want 0.5", p)
	}
	// Guard-banded nominal (Table 3: 50.26 dB at Δ=0.51%) sits 3σ above
	// the bound, so the predicted yield is Φ(3) ≈ 0.99865.
	target := GuardBand(spec, 0.51)
	p := PredictNormal(spec, target, 0.51)
	wantSigma := target * 0.51 / 300
	wantZ := (target - 50) / wantSigma
	if math.Abs(wantZ-3) > 0.02 {
		t.Fatalf("guard band should land ~3σ out, z = %g", wantZ)
	}
	if math.Abs(p-0.99865) > 1e-3 {
		t.Errorf("guard-banded predicted yield = %g, want ≈0.99865", p)
	}
	// AtMost mirrors: nominal below the bound passes.
	le := Spec{Name: "power", Sense: AtMost, Bound: 1.0}
	if p := PredictNormal(le, 0.9, 1); p < 0.99 {
		t.Errorf("comfortable AtMost nominal scored %g", p)
	}
	if p := PredictNormal(le, 1.1, 1); p > 0.01 {
		t.Errorf("violating AtMost nominal scored %g", p)
	}
	// Zero variation degenerates to the deterministic pass/fail.
	if p := PredictNormal(spec, 51, 0); p != 1 {
		t.Errorf("zero-sigma pass = %g", p)
	}
	if p := PredictNormal(spec, 49, 0); p != 0 {
		t.Errorf("zero-sigma fail = %g", p)
	}
}

func TestPredictJoint(t *testing.T) {
	specs := []Spec{
		{Name: "gain", Sense: AtLeast, Bound: 50},
		{Name: "pm", Sense: AtLeast, Bound: 74},
	}
	p, err := PredictJoint(specs, []float64{50, 74}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.25) > 1e-12 {
		t.Errorf("two at-bound specs = %g, want 0.25", p)
	}
	if _, err := PredictJoint(specs, []float64{50}, []float64{1, 1}); err == nil {
		t.Error("length mismatch accepted")
	}
}
