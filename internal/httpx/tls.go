package httpx

import (
	"crypto/tls"
	"fmt"
)

// ModernTLSConfig returns the server TLS defaults the ayd listener
// uses: TLS 1.2 minimum, modern curves first, and (for 1.2 — 1.3 suites
// are not configurable) only ECDHE + AEAD cipher suites. The caller
// adds certificates.
func ModernTLSConfig() *tls.Config {
	return &tls.Config{
		MinVersion: tls.VersionTLS12,
		CurvePreferences: []tls.CurveID{
			tls.X25519,
			tls.CurveP256,
			tls.CurveP384,
		},
		CipherSuites: []uint16{
			tls.TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256,
			tls.TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
			tls.TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384,
			tls.TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384,
			tls.TLS_ECDHE_ECDSA_WITH_CHACHA20_POLY1305,
			tls.TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305,
		},
	}
}

// LoadTLS builds a serving tls.Config with modern defaults from a PEM
// certificate/key pair on disk. Both paths must be set together.
func LoadTLS(certFile, keyFile string) (*tls.Config, error) {
	if certFile == "" || keyFile == "" {
		return nil, fmt.Errorf("httpx: TLS needs both a certificate and a key (cert=%q key=%q)", certFile, keyFile)
	}
	cert, err := tls.LoadX509KeyPair(certFile, keyFile)
	if err != nil {
		return nil, fmt.Errorf("httpx: loading TLS key pair: %w", err)
	}
	cfg := ModernTLSConfig()
	cfg.Certificates = []tls.Certificate{cert}
	return cfg, nil
}
