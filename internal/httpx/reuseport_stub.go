//go:build !linux && !darwin

package httpx

import "errors"

const reusePortAvailable = false

// setReusePort is never reached on platforms without SO_REUSEPORT
// support — ListenReusePort falls back to a single plain listener
// first.
func setReusePort(fd uintptr) error {
	return errors.New("httpx: SO_REUSEPORT not supported on this platform")
}
