package httpx

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"sync"
	"testing"

	"analogyield/internal/server/api"
)

func TestRequestIDGenerated(t *testing.T) {
	var seen string
	h := RequestID(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestIDFrom(r.Context())
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if seen == "" {
		t.Fatal("no request ID in context")
	}
	if got := rec.Header().Get(RequestIDHeader); got != seen {
		t.Fatalf("response header %q, context %q", got, seen)
	}
	if !validRequestID(seen) {
		t.Fatalf("generated ID %q is not valid by our own rules", seen)
	}
}

func TestRequestIDPropagated(t *testing.T) {
	var seen string
	h := RequestID(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestIDFrom(r.Context())
	}))
	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set(RequestIDHeader, "client-id-42")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if seen != "client-id-42" {
		t.Fatalf("client-supplied ID not propagated: got %q", seen)
	}

	// A hostile ID (log forging, over-long) is replaced, not trusted.
	for _, bad := range []string{"evil\nid", strings.Repeat("x", 65), `a"b`, ""} {
		req := httptest.NewRequest("GET", "/", nil)
		req.Header.Set(RequestIDHeader, bad)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if seen == bad {
			t.Fatalf("hostile ID %q accepted verbatim", bad)
		}
		if seen == "" || !validRequestID(seen) {
			t.Fatalf("replacement for %q invalid: %q", bad, seen)
		}
	}
}

// logBuffer collects slog output for assertions.
func logBuffer() (*slog.Logger, *bytes.Buffer) {
	var buf bytes.Buffer
	return slog.New(slog.NewTextHandler(&buf, nil)), &buf
}

func TestRecoverPanic(t *testing.T) {
	log, buf := logBuffer()
	h := RequestID(Recover(log, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/yield/query", nil))

	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	var apiErr api.Error
	if err := json.Unmarshal(rec.Body.Bytes(), &apiErr); err != nil {
		t.Fatalf("500 body is not JSON: %v (%q)", err, rec.Body.String())
	}
	id := rec.Header().Get(RequestIDHeader)
	if id == "" || apiErr.RequestID != id {
		t.Fatalf("error body request_id %q != header %q", apiErr.RequestID, id)
	}
	logged := buf.String()
	if !strings.Contains(logged, "kaboom") {
		t.Fatalf("panic value not logged: %s", logged)
	}
	if !strings.Contains(logged, "httpx_test.go") && !strings.Contains(logged, "TestRecoverPanic") {
		t.Fatalf("stack not captured in log: %s", logged)
	}
	if !strings.Contains(logged, id) {
		t.Fatalf("request ID %q not in log: %s", id, logged)
	}
}

func TestRecoverAfterWriteDoesNotDoubleRespond(t *testing.T) {
	log, _ := logBuffer()
	h := Recover(log, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "partial")
		panic("late")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusOK || rec.Body.String() != "partial" {
		t.Fatalf("recover rewrote an in-flight response: %d %q", rec.Code, rec.Body.String())
	}
}

func TestRecoverReraisesAbortHandler(t *testing.T) {
	log, _ := logBuffer()
	h := Recover(log, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Fatal("ErrAbortHandler was swallowed; the stdlib contract needs it re-panicked")
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
}

func TestMaxBytes(t *testing.T) {
	var readErr error
	h := MaxBytes(16, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, readErr = io.ReadAll(r.Body)
	}))
	body := strings.NewReader(strings.Repeat("x", 64))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("POST", "/", body))
	var mbe *http.MaxBytesError
	if !errors.As(readErr, &mbe) {
		t.Fatalf("oversized read error = %v, want *http.MaxBytesError", readErr)
	}

	// Under the cap reads cleanly.
	readErr = nil
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("POST", "/", strings.NewReader("ok")))
	if readErr != nil {
		t.Fatalf("in-bounds body errored: %v", readErr)
	}
}

func TestCORSPreflight(t *testing.T) {
	h := CORS([]string{"https://app.example"}, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("preflight must not reach the handler")
	}))
	req := httptest.NewRequest("OPTIONS", "/v1/yield/query", nil)
	req.Header.Set("Origin", "https://app.example")
	req.Header.Set("Access-Control-Request-Method", "POST")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNoContent {
		t.Fatalf("preflight status = %d, want 204", rec.Code)
	}
	hd := rec.Header()
	if hd.Get("Access-Control-Allow-Origin") != "https://app.example" {
		t.Fatalf("Allow-Origin = %q", hd.Get("Access-Control-Allow-Origin"))
	}
	if !strings.Contains(hd.Get("Access-Control-Allow-Methods"), "POST") {
		t.Fatalf("Allow-Methods = %q", hd.Get("Access-Control-Allow-Methods"))
	}
	if hd.Get("Access-Control-Allow-Headers") == "" || hd.Get("Access-Control-Max-Age") == "" {
		t.Fatal("preflight missing Allow-Headers / Max-Age")
	}
	if !strings.Contains(strings.Join(hd.Values("Vary"), ","), "Origin") {
		t.Fatal("preflight missing Vary: Origin")
	}
}

func TestCORSActualAndDenied(t *testing.T) {
	h := CORS([]string{"https://app.example"}, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))

	// Allowed origin on a normal request: allow + expose headers, and
	// the handler runs.
	req := httptest.NewRequest("POST", "/", nil)
	req.Header.Set("Origin", "https://app.example")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if rec.Header().Get("Access-Control-Allow-Origin") != "https://app.example" {
		t.Fatal("allowed origin got no Allow-Origin header")
	}
	if rec.Header().Get("Access-Control-Expose-Headers") != RequestIDHeader {
		t.Fatalf("Expose-Headers = %q", rec.Header().Get("Access-Control-Expose-Headers"))
	}

	// Unlisted origin: no CORS headers at all (the browser blocks).
	req = httptest.NewRequest("POST", "/", nil)
	req.Header.Set("Origin", "https://evil.example")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Header().Get("Access-Control-Allow-Origin") != "" {
		t.Fatal("unlisted origin was allowed")
	}

	// Wildcard config allows anyone, echoing the origin.
	any := CORS([]string{"*"}, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	req = httptest.NewRequest("GET", "/", nil)
	req.Header.Set("Origin", "https://whoever.example")
	rec = httptest.NewRecorder()
	any.ServeHTTP(rec, req)
	if rec.Header().Get("Access-Control-Allow-Origin") != "https://whoever.example" {
		t.Fatal("wildcard did not echo the origin")
	}
}

func TestRealIP(t *testing.T) {
	proxies, err := ParseProxies([]string{"10.0.0.0/8", "127.0.0.1"})
	if err != nil {
		t.Fatal(err)
	}
	var seen string
	h := RealIP(proxies, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = ClientIPFrom(r.Context())
	}))
	serve := func(remote string, xff ...string) string {
		req := httptest.NewRequest("GET", "/", nil)
		req.RemoteAddr = remote
		for _, v := range xff {
			req.Header.Add("X-Forwarded-For", v)
		}
		h.ServeHTTP(httptest.NewRecorder(), req)
		return seen
	}

	// Untrusted peer: its own address wins, whatever headers it sends.
	if got := serve("203.0.113.9:1234", "198.51.100.1"); got != "203.0.113.9" {
		t.Fatalf("untrusted peer: got %q", got)
	}
	// Trusted proxy forwards the real client.
	if got := serve("10.1.2.3:443", "198.51.100.7"); got != "198.51.100.7" {
		t.Fatalf("trusted proxy: got %q", got)
	}
	// Chain: client, intermediate trusted hop — rightmost untrusted wins.
	if got := serve("127.0.0.1:80", "198.51.100.7, 10.9.9.9"); got != "198.51.100.7" {
		t.Fatalf("proxy chain: got %q", got)
	}
	// Client-forged XFF behind a trusted proxy: the forged (leftmost)
	// entry is ignored in favour of the rightmost untrusted hop.
	if got := serve("10.1.2.3:443", "1.2.3.4, 198.51.100.7"); got != "198.51.100.7" {
		t.Fatalf("forged XFF: got %q", got)
	}

	if _, err := ParseProxies([]string{"not-an-ip"}); err == nil {
		t.Fatal("bad proxy entry parsed")
	}
	if !trusted(proxies, netip.MustParseAddr("10.255.0.1")) {
		t.Fatal("10/8 not trusted")
	}
}

func TestLimitConcurrency(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	h := LimitConcurrency(1, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
	}))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	}()
	<-started

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity status = %d, want 503", rec.Code)
	}
	var apiErr api.Error
	if err := json.Unmarshal(rec.Body.Bytes(), &apiErr); err != nil || apiErr.Status != 503 {
		t.Fatalf("shed body = %q", rec.Body.String())
	}
	close(release)
	wg.Wait()
}

func TestAccessLogCarriesIdentity(t *testing.T) {
	log, buf := logBuffer()
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	})
	h := RequestID(RealIP(nil, AccessLog(log, inner)))
	req := httptest.NewRequest("GET", "/v1/models", nil)
	req.RemoteAddr = "203.0.113.9:1234"
	req.Header.Set(RequestIDHeader, "trace-me")
	h.ServeHTTP(httptest.NewRecorder(), req)
	logged := buf.String()
	for _, want := range []string{"request_id=trace-me", "remote=203.0.113.9", "status=418"} {
		if !strings.Contains(logged, want) {
			t.Fatalf("access log missing %q: %s", want, logged)
		}
	}
}

func TestModernTLSConfig(t *testing.T) {
	cfg := ModernTLSConfig()
	if cfg.MinVersion < 0x0303 { // tls.VersionTLS12
		t.Fatalf("MinVersion = %x, want >= TLS1.2", cfg.MinVersion)
	}
	if len(cfg.CipherSuites) == 0 || len(cfg.CurvePreferences) == 0 {
		t.Fatal("cipher suites / curves not pinned")
	}
	if _, err := LoadTLS("", ""); err == nil {
		t.Fatal("LoadTLS accepted empty paths")
	}
	if _, err := LoadTLS("/does/not/exist.pem", "/nope.pem"); err == nil {
		t.Fatal("LoadTLS accepted missing files")
	}
}
