package httpx

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"testing"
	"time"
)

func TestListenReusePortSingle(t *testing.T) {
	lns, err := ListenReusePort("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer closeAll(lns)
	if len(lns) != 1 {
		t.Fatalf("n=1 opened %d listeners", len(lns))
	}
	// n < 1 is clamped, not an error.
	lns0, err := ListenReusePort("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer closeAll(lns0)
	if len(lns0) != 1 {
		t.Fatalf("n=0 opened %d listeners", len(lns0))
	}
}

// TestListenReusePortShardsShareTraffic opens several listeners on one
// port, serves a shard-identifying HTTP response from each, and checks
// that (a) they all bound the same address and (b) the kernel's
// connection hashing actually spreads distinct connections across every
// shard — the property the server's -listeners flag depends on.
func TestListenReusePortShardsShareTraffic(t *testing.T) {
	if !ReusePortSupported() {
		t.Skip("SO_REUSEPORT not supported on this platform")
	}
	const shards = 4
	lns, err := ListenReusePort("127.0.0.1:0", shards)
	if err != nil {
		t.Fatal(err)
	}
	defer closeAll(lns)
	if len(lns) != shards {
		t.Fatalf("opened %d listeners, want %d", len(lns), shards)
	}
	addr := lns[0].Addr().String()
	for i, ln := range lns {
		if got := ln.Addr().String(); got != addr {
			t.Fatalf("shard %d bound %s, want %s", i, got, addr)
		}
	}

	var hits [shards]atomic.Int64
	servers := make([]*http.Server, shards)
	for i := range lns {
		i := i
		servers[i] = &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits[i].Add(1)
			fmt.Fprintf(w, "%d", i)
		})}
		go servers[i].Serve(lns[i]) //nolint:errcheck // closed by closeAll
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	// Each request on its own connection: a fresh source port per
	// request gives the kernel a fresh 4-tuple to hash. With 200
	// connections over 4 shards, a silent shard is a broken shard, not
	// bad luck (P ≈ 4·(3/4)^200 ≈ 1e-24).
	client := &http.Client{
		Transport: &http.Transport{DisableKeepAlives: true},
		Timeout:   5 * time.Second,
	}
	for i := 0; i < 200; i++ {
		resp, err := client.Get("http://" + addr + "/")
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
	}
	for i := range hits {
		if hits[i].Load() == 0 {
			counts := make([]int64, shards)
			for j := range hits {
				counts[j] = hits[j].Load()
			}
			t.Fatalf("shard %d received no connections (distribution %v)", i, counts)
		}
	}
}

// TestListenReusePortCleanupOnError ensures a failed shard bind closes
// the shards already opened instead of leaking them.
func TestListenReusePortCleanupOnError(t *testing.T) {
	if !ReusePortSupported() {
		t.Skip("SO_REUSEPORT not supported on this platform")
	}
	// Occupy a port WITHOUT SO_REUSEPORT: the plain listener blocks
	// reuseport binds to the same port, so shard 1 of the sharded bind
	// fails... except the first reuseport shard also fails, which is
	// what we want — the error path must not leak a half-open set.
	plain, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if _, err := ListenReusePort(plain.Addr().String(), 4); err == nil {
		t.Fatal("bind over a non-reuseport listener unexpectedly succeeded")
	}
}

func closeAll(lns []net.Listener) {
	for _, ln := range lns {
		ln.Close()
	}
}
