//go:build linux || darwin

package httpx

import (
	"runtime"
	"syscall"
)

const reusePortAvailable = true

// soReusePort is the SO_REUSEPORT socket option value. The syscall
// package never gained the constant on linux/amd64 (a generated-file
// artifact — arm64 and friends have it), so it is spelled out here:
// 0xf on linux except the mips family's 0x200, and BSD-derived 0x200
// on darwin.
var soReusePort = func() int {
	if runtime.GOOS == "darwin" {
		return 0x200
	}
	switch runtime.GOARCH {
	case "mips", "mipsle", "mips64", "mips64le":
		return 0x200
	}
	return 0xf
}()

func setReusePort(fd uintptr) error {
	return syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
}
