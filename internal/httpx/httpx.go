// Package httpx is the service-agnostic HTTP hardening layer of the ayd
// server: the middleware that stands between untrusted network traffic
// and the handlers. Everything here is pure stdlib and composes as
// plain http.Handler wrappers, outermost first:
//
//	RequestID → RealIP → AccessLog → Recover → CORS →
//	LimitConcurrency → MaxBytes → mux
//
// The package owns three cross-cutting concerns the handlers must not
// re-implement: request identity (every request gets an X-Request-ID,
// generated or propagated, carried in the context, the access log and
// error bodies), failure containment (panics become logged 500s with a
// captured stack instead of a dropped connection), and resource bounds
// (global/per-route in-flight caps, request body limits). TLS listener
// defaults live in tls.go.
//
// RequestID and RealIP sit outside AccessLog because context values
// only flow inward: the logger reads both from the request context.
package httpx

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/netip"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"analogyield/internal/server/api"
)

// RequestIDHeader is the header request IDs travel in, both directions.
const RequestIDHeader = "X-Request-ID"

type ctxKey int

const (
	reqIDKey ctxKey = iota
	clientIPKey
)

// RequestIDFrom returns the request's ID ("" outside the RequestID
// middleware).
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey).(string)
	return id
}

// ClientIPFrom returns the trusted client IP ("" outside the RealIP
// middleware).
func ClientIPFrom(ctx context.Context) string {
	ip, _ := ctx.Value(clientIPKey).(string)
	return ip
}

// NewRequestID returns a fresh 16-hex-char request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the system is badly broken; a
		// clock-derived ID keeps requests distinguishable regardless.
		return strconv.FormatInt(time.Now().UnixNano(), 16)
	}
	return hex.EncodeToString(b[:])
}

// validRequestID bounds what we accept from clients: short, printable,
// no header-injection or log-forging characters.
func validRequestID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return true
}

// RequestID propagates a valid client-supplied X-Request-ID or
// generates one, stamps it on the response header, and stores it in the
// request context for the access log and error bodies.
func RequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if !validRequestID(id) {
			id = NewRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), reqIDKey, id)))
	})
}

// writeJSONError emits the service's standard error body. It is a
// deliberately minimal sibling of the server package's writeError: the
// middleware cannot import the server (the server imports httpx).
func writeJSONError(w http.ResponseWriter, status int, msg, requestID string) {
	b, err := json.Marshal(&api.Error{Status: status, Message: msg, RequestID: requestID})
	if err != nil {
		b = []byte(`{"status":500,"error":"internal server error"}`)
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(len(b)))
	w.WriteHeader(status)
	w.Write(b) //nolint:errcheck // client gone: nothing left to do
}

// headerTracker notes whether the response has started, so Recover
// knows if a 500 body can still be sent.
type headerTracker struct {
	http.ResponseWriter
	wrote bool
}

func (w *headerTracker) WriteHeader(code int) {
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *headerTracker) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Flush keeps SSE streaming working through the tracker.
func (w *headerTracker) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Recover turns a handler panic into a logged 500 (with the captured
// stack and request ID in the log, and the request ID in the JSON body)
// instead of a killed connection. http.ErrAbortHandler is re-panicked:
// it is the stdlib's sanctioned way to abort a response.
func Recover(log *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ww := &headerTracker{ResponseWriter: w}
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				panic(p)
			}
			id := RequestIDFrom(r.Context())
			log.Error("panic recovered",
				"err", fmt.Sprint(p),
				"method", r.Method,
				"path", r.URL.Path,
				"request_id", id,
				"stack", string(debug.Stack()),
			)
			if !ww.wrote {
				writeJSONError(ww, http.StatusInternalServerError, "internal server error", id)
			}
		}()
		next.ServeHTTP(ww, r)
	})
}

// MaxBytes caps every request body at n bytes via http.MaxBytesReader;
// a handler reading past the cap gets *http.MaxBytesError, which the
// server maps to 413. n <= 0 disables the cap.
func MaxBytes(n int64, next http.Handler) http.Handler {
	if n <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, n)
		}
		next.ServeHTTP(w, r)
	})
}

// ParseProxies parses trusted-proxy entries: CIDRs ("10.0.0.0/8") or
// bare addresses ("203.0.113.7", treated as single-host prefixes).
func ParseProxies(entries []string) ([]netip.Prefix, error) {
	var out []netip.Prefix
	for _, e := range entries {
		e = strings.TrimSpace(e)
		if e == "" {
			continue
		}
		if p, err := netip.ParsePrefix(e); err == nil {
			out = append(out, p)
			continue
		}
		a, err := netip.ParseAddr(e)
		if err != nil {
			return nil, fmt.Errorf("httpx: bad trusted proxy %q (want CIDR or IP)", e)
		}
		out = append(out, netip.PrefixFrom(a, a.BitLen()))
	}
	return out, nil
}

func trusted(proxies []netip.Prefix, a netip.Addr) bool {
	a = a.Unmap()
	for _, p := range proxies {
		if p.Contains(a) {
			return true
		}
	}
	return false
}

// RealIP resolves the client IP for the access log: the direct peer,
// unless that peer is a trusted proxy, in which case the rightmost
// untrusted entry of X-Forwarded-For wins (the standard algorithm — a
// client cannot spoof its IP by sending its own XFF header, because an
// untrusted peer's headers are never consulted). The result travels in
// the context (ClientIPFrom); r.RemoteAddr is left untouched.
func RealIP(proxies []netip.Prefix, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ip := clientIP(proxies, r)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), clientIPKey, ip)))
	})
}

func clientIP(proxies []netip.Prefix, r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	peer, err := netip.ParseAddr(host)
	if err != nil {
		return host
	}
	if len(proxies) == 0 || !trusted(proxies, peer) {
		return peer.Unmap().String()
	}
	// Walk the forwarded chain right to left, skipping trusted hops;
	// the first untrusted address is the real client.
	var chain []string
	for _, v := range r.Header.Values("X-Forwarded-For") {
		for _, part := range strings.Split(v, ",") {
			if p := strings.TrimSpace(part); p != "" {
				chain = append(chain, p)
			}
		}
	}
	for i := len(chain) - 1; i >= 0; i-- {
		a, err := netip.ParseAddr(chain[i])
		if err != nil {
			break // a forged entry poisons everything to its left
		}
		if !trusted(proxies, a) {
			return a.Unmap().String()
		}
	}
	if xr := strings.TrimSpace(r.Header.Get("X-Real-IP")); xr != "" {
		if a, err := netip.ParseAddr(xr); err == nil {
			return a.Unmap().String()
		}
	}
	return peer.Unmap().String()
}

// corsMethods and corsHeaders are what the ayd API actually uses.
const (
	corsMethods = "GET, POST, DELETE, OPTIONS"
	corsHeaders = "Content-Type, Accept, Last-Event-ID, " + RequestIDHeader
)

// CORS answers cross-origin requests for the listed origins ("*"
// allows any). Preflights (OPTIONS + Access-Control-Request-Method) are
// answered directly with 204; other requests gain the allow/expose
// headers and fall through. An empty origin list disables the
// middleware entirely — same-origin and non-browser traffic is
// unaffected either way.
func CORS(origins []string, next http.Handler) http.Handler {
	if len(origins) == 0 {
		return next
	}
	allowAll := false
	allowed := make(map[string]bool, len(origins))
	for _, o := range origins {
		if o = strings.TrimSpace(o); o == "*" {
			allowAll = true
		} else if o != "" {
			allowed[o] = true
		}
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		origin := r.Header.Get("Origin")
		if origin == "" || !(allowAll || allowed[origin]) {
			// Not cross-origin, or not an origin we serve: no CORS
			// headers (the browser enforces the rest).
			next.ServeHTTP(w, r)
			return
		}
		h := w.Header()
		h.Add("Vary", "Origin")
		h.Set("Access-Control-Allow-Origin", origin)
		if r.Method == http.MethodOptions && r.Header.Get("Access-Control-Request-Method") != "" {
			h.Set("Access-Control-Allow-Methods", corsMethods)
			h.Set("Access-Control-Allow-Headers", corsHeaders)
			h.Set("Access-Control-Max-Age", "600")
			w.WriteHeader(http.StatusNoContent)
			return
		}
		h.Set("Access-Control-Expose-Headers", RequestIDHeader)
		next.ServeHTTP(w, r)
	})
}

// LimitConcurrency caps simultaneous in-flight requests; excess
// requests are rejected with 503 rather than queued, so overload sheds
// quickly instead of building invisible latency. It serves both as the
// server's global cap and as a tighter per-route cap on expensive
// routes (flow submission, model install).
func LimitConcurrency(n int, next http.Handler) http.Handler {
	if n <= 0 {
		return next
	}
	sem := make(chan struct{}, n)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
			next.ServeHTTP(w, r)
		default:
			writeJSONError(w, http.StatusServiceUnavailable, "server at capacity",
				RequestIDFrom(r.Context()))
		}
	})
}

// statusRecorder captures the response status and size for the access
// log.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusRecorder) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// Flush forwards to the underlying writer so SSE streaming keeps
// working through the recorder.
func (w *statusRecorder) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// AccessLog emits one structured line per request, including the
// request ID and resolved client IP when the inner middleware provided
// them.
func AccessLog(log *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// When Info is filtered out (production at Warn, benchmarks with a
		// silenced logger), skip the recorder and attribute boxing
		// entirely — otherwise every request pays for a log line nobody
		// will see.
		if !log.Enabled(r.Context(), slog.LevelInfo) {
			next.ServeHTTP(w, r)
			return
		}
		rec := &statusRecorder{ResponseWriter: w}
		t0 := time.Now()
		next.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		remote := ClientIPFrom(r.Context())
		if remote == "" {
			remote = r.RemoteAddr
		}
		log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"bytes", rec.bytes,
			"duration_ms", float64(time.Since(t0).Microseconds())/1e3,
			"remote", remote,
			"request_id", RequestIDFrom(r.Context()),
		)
	})
}
