package httpx

import (
	"context"
	"fmt"
	"net"
	"syscall"
)

// Listener sharding. One accept loop on one socket is a bottleneck two
// ways at high connection rates: every accept serializes through the
// socket's lock, and the single accept goroutine wakes on one core no
// matter how many are idle. SO_REUSEPORT lets N sockets bind the same
// address, with the kernel hashing incoming connections across them —
// each socket gets its own accept queue, its own accept loop, and (with
// one http.Server per listener) its own connection-tracking mutex.
//
// The syscall package on linux/amd64 predates SO_REUSEPORT and never
// gained the constant (it exists on arm64 and most other arches), so
// the platform files define the option value themselves rather than
// pulling in golang.org/x/sys.

// ReusePortSupported reports whether this platform can shard one
// listen address across multiple SO_REUSEPORT sockets.
func ReusePortSupported() bool { return reusePortAvailable }

// ListenReusePort opens n TCP listeners on addr that share the port
// via SO_REUSEPORT, so the kernel spreads incoming connections across
// their accept queues. n < 2 — or any n on a platform without
// SO_REUSEPORT — degrades to a single plain listener; callers that
// care can check ReusePortSupported and warn. addr may leave the port
// to the kernel (":0"): the port the first listener is given is what
// the remaining n-1 bind.
func ListenReusePort(addr string, n int) ([]net.Listener, error) {
	if n < 2 || !reusePortAvailable {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, err
		}
		return []net.Listener{ln}, nil
	}
	lc := net.ListenConfig{Control: reusePortControl}
	lns := make([]net.Listener, 0, n)
	for i := 0; i < n; i++ {
		ln, err := lc.Listen(context.Background(), "tcp", addr)
		if err != nil {
			for _, l := range lns {
				l.Close()
			}
			return nil, fmt.Errorf("httpx: reuseport shard %d/%d on %s: %w", i+1, n, addr, err)
		}
		lns = append(lns, ln)
		if i == 0 {
			// Resolve a kernel-assigned port once; every further shard
			// must bind the same one.
			addr = ln.Addr().String()
		}
	}
	return lns, nil
}

// reusePortControl is the ListenConfig.Control hook setting
// SO_REUSEPORT before bind.
func reusePortControl(network, address string, c syscall.RawConn) error {
	var serr error
	if err := c.Control(func(fd uintptr) { serr = setReusePort(fd) }); err != nil {
		return err
	}
	if serr != nil {
		return fmt.Errorf("httpx: SO_REUSEPORT on %s: %w", address, serr)
	}
	return serr
}
