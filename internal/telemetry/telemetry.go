// Package telemetry exports the repo's core.Metrics registry in the
// Prometheus text exposition format (version 0.0.4), pure stdlib — no
// client library. It is the scrapeable twin of the existing expvar
// export: the same counters, gauges and per-route latency histograms
// that /debug/vars renders as one JSON blob appear as individually
// typed time series at GET /metrics, which is what fleet monitoring
// actually ingests.
//
// Flow counters become `ayd_*_total` counters, the MC scheduler
// occupancy gauges keep their current/peak split, per-route latency
// histograms become one `ayd_http_request_duration_seconds` family with
// a `route` label (full cumulative bucket ladders, not just quantiles —
// Prometheus computes quantiles server-side across scrapes), and two
// process-level gauges (`go_goroutines`,
// `process_resident_memory_bytes`) give leak hunters like cmd/soak a
// uniform signal to sample.
package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"analogyield/internal/core"
)

// ContentType is the exposition-format content type prometheus scrapers
// negotiate.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler serves the registry as a Prometheus scrape target.
func Handler(m *core.Metrics) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		Write(&buf, m)
		h := w.Header()
		h.Set("Content-Type", ContentType)
		h.Set("Content-Length", strconv.Itoa(buf.Len()))
		w.WriteHeader(http.StatusOK)
		w.Write(buf.Bytes()) //nolint:errcheck // client gone: nothing left to do
	})
}

// Write renders one full exposition of the registry. Output order is
// deterministic (fixed family order, sorted label values) so scrapes
// diff cleanly and tests can golden-pin the layout.
func Write(w io.Writer, m *core.Metrics) {
	s := m.Snapshot()
	b := &expo{w: w}

	b.family("ayd_flows_total", "counter", "Completed flow runs.")
	b.sample("ayd_flows_total", "", float64(s.Flows))
	b.family("ayd_evaluations_total", "counter", "Circuit evaluations across all flows.")
	b.sample("ayd_evaluations_total", "", float64(s.Evaluations))
	b.family("ayd_mc_simulations_total", "counter", "Monte Carlo simulations across all flows.")
	b.sample("ayd_mc_simulations_total", "", float64(s.MCSimulations))
	b.family("ayd_solver_failures_total", "counter", "Solver failures (non-converged evaluations).")
	b.sample("ayd_solver_failures_total", "", float64(s.SolverFailures))
	b.family("ayd_cache_hits_total", "counter", "Genome evaluation cache hits.")
	b.sample("ayd_cache_hits_total", "", float64(s.CacheHits))
	b.family("ayd_cache_misses_total", "counter", "Genome evaluation cache misses.")
	b.sample("ayd_cache_misses_total", "", float64(s.CacheMisses))
	b.family("ayd_dropped_points_total", "counter", "Pareto points dropped during MC verification.")
	b.sample("ayd_dropped_points_total", "", float64(s.DroppedPoints))
	b.family("ayd_checkpoints_total", "counter", "Flow checkpoints written.")
	b.sample("ayd_checkpoints_total", "", float64(s.Checkpoints))
	b.family("ayd_mc_predicted_total", "counter", "MC samples answered by the surrogate instead of simulation.")
	b.sample("ayd_mc_predicted_total", "", float64(s.MCPredicted))

	b.family("ayd_stage_seconds_total", "counter", "Cumulative wall-clock per flow stage.")
	b.sample("ayd_stage_seconds_total", `stage="moo"`, s.MOOSeconds)
	b.sample("ayd_stage_seconds_total", `stage="mc"`, s.MCSeconds)
	b.sample("ayd_stage_seconds_total", `stage="tables"`, s.TablesSeconds)

	b.family("ayd_mc_busy_workers", "gauge", "MC scheduler workers currently simulating.")
	b.sample("ayd_mc_busy_workers", "", float64(s.MCBusyWorkers))
	b.family("ayd_mc_busy_workers_peak", "gauge", "High-water mark of busy MC workers.")
	b.sample("ayd_mc_busy_workers_peak", "", float64(s.MCBusyWorkersPeak))
	b.family("ayd_mc_queue_depth", "gauge", "MC scheduler work items queued.")
	b.sample("ayd_mc_queue_depth", "", float64(s.MCQueueDepth))
	b.family("ayd_mc_queue_depth_peak", "gauge", "High-water mark of the MC queue depth.")
	b.sample("ayd_mc_queue_depth_peak", "", float64(s.MCQueueDepthPeak))
	b.family("ayd_mc_points_in_flight", "gauge", "Pareto points with MC work in flight.")
	b.sample("ayd_mc_points_in_flight", "", float64(s.MCPointsInFlight))
	b.family("ayd_mc_points_in_flight_peak", "gauge", "High-water mark of MC points in flight.")
	b.sample("ayd_mc_points_in_flight_peak", "", float64(s.MCPointsInFlightPeak))

	if s.MCStrategy != "" {
		b.family("ayd_mc_strategy_info", "gauge", "Most recent variance-reduction strategy (value is always 1).")
		b.sample("ayd_mc_strategy_info", `strategy="`+escapeLabel(s.MCStrategy)+`"`, 1)
		b.family("ayd_mc_mean_ess", "gauge", "Mean effective sample size per MC point.")
		b.sample("ayd_mc_mean_ess", "", s.MCMeanESS)
	}

	// Cluster families appear only when this process runs as a named
	// replica, so single-node expositions stay byte-identical to the
	// pre-cluster layout.
	if s.Replica != "" {
		b.family("ayd_replica_info", "gauge", "Replica identity (value is always 1).")
		b.sample("ayd_replica_info", `replica="`+escapeLabel(s.Replica)+`"`, 1)
		b.family("ayd_leases_held", "gauge", "Job leases currently held by this replica.")
		b.sample("ayd_leases_held", "", float64(s.LeasesHeld))
		b.family("ayd_lease_acquired_total", "counter", "Job leases acquired (submissions plus takeovers).")
		b.sample("ayd_lease_acquired_total", "", float64(s.LeaseAcquired))
		b.family("ayd_lease_takeovers_total", "counter", "Jobs adopted from a crashed or drained peer.")
		b.sample("ayd_lease_takeovers_total", "", float64(s.LeaseTakeovers))
		b.family("ayd_lease_rejections_total", "counter", "Fenced writes or renewals refused because the lease was lost.")
		b.sample("ayd_lease_rejections_total", "", float64(s.LeaseRejections))
		b.family("ayd_mc_shards_dispatched_total", "counter", "MC shards successfully evaluated by peer replicas.")
		b.sample("ayd_mc_shards_dispatched_total", "", float64(s.MCShardsDispatched))
		b.family("ayd_mc_shards_fallback_total", "counter", "MC shards that fell back to local evaluation after a peer failure.")
		b.sample("ayd_mc_shards_fallback_total", "", float64(s.MCShardsFallback))
		b.family("ayd_mc_shards_served_total", "counter", "MC shard requests this replica evaluated for peers.")
		b.sample("ayd_mc_shards_served_total", "", float64(s.MCShardsServed))
	}

	writeHistograms(b, m, s)

	b.family("go_goroutines", "gauge", "Number of goroutines.")
	b.sample("go_goroutines", "", float64(runtime.NumGoroutine()))
	if rss, ok := readRSS(); ok {
		b.family("process_resident_memory_bytes", "gauge", "Resident set size.")
		b.sample("process_resident_memory_bytes", "", float64(rss))
	}
}

// writeHistograms renders every named latency histogram as one series
// set of the shared ayd_http_request_duration_seconds family.
func writeHistograms(b *expo, m *core.Metrics, s core.MetricsSnapshot) {
	if len(s.Latencies) == 0 {
		return
	}
	names := make([]string, 0, len(s.Latencies))
	for name := range s.Latencies {
		names = append(names, name)
	}
	sort.Strings(names)
	const fam = "ayd_http_request_duration_seconds"
	b.family(fam, "histogram", "HTTP request latency by route.")
	for _, name := range names {
		buckets, count, sum := m.Histogram(name).Export()
		route := `route="` + escapeLabel(name) + `"`
		for _, bk := range buckets {
			b.sample(fam+"_bucket", route+`,le="`+formatLe(bk.UpperBound)+`"`, float64(bk.CumulativeCount))
		}
		b.sample(fam+"_sum", route, sum)
		b.sample(fam+"_count", route, float64(count))
	}
}

// expo accumulates exposition lines.
type expo struct {
	w io.Writer
}

func (b *expo) family(name, typ, help string) {
	fmt.Fprintf(b.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (b *expo) sample(name, labels string, v float64) {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(b.w, "%s%s %s\n", name, labels, formatValue(v))
}

// formatValue renders a sample value; integral values print without an
// exponent so counters stay human-readable.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatLe renders a bucket bound ("+Inf" for the overflow bucket).
func formatLe(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// readRSS reports the process resident set size. Linux-only (/proc);
// other platforms simply omit the metric.
func readRSS() (int64, bool) {
	b, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0, false
	}
	fields := strings.Fields(string(b))
	if len(fields) < 2 {
		return 0, false
	}
	pages, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return 0, false
	}
	return pages * int64(os.Getpagesize()), true
}
