package telemetry

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"net/http/httptest"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"analogyield/internal/core"
)

// sample is one parsed exposition line.
type sample struct {
	name   string
	labels map[string]string
	value  float64
}

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	lineRe  = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)$`)
	labelRe = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

// parseExposition validates the text against the 0.0.4 exposition
// format: HELP and TYPE precede every family's samples, names are
// legal, values parse, label pairs are well-formed. It returns the
// samples and the TYPE of each family.
func parseExposition(t *testing.T, text string) ([]sample, map[string]string) {
	t.Helper()
	var samples []sample
	types := map[string]string{}
	helps := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, found := strings.Cut(rest, " ")
			if !found || !nameRe.MatchString(name) {
				t.Fatalf("bad HELP line: %q", line)
			}
			helps[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, found := strings.Cut(rest, " ")
			if !found || !nameRe.MatchString(name) {
				t.Fatalf("bad TYPE line: %q", line)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("illegal TYPE %q in %q", typ, line)
			}
			types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment form: %q", line)
		}
		m := lineRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable sample line: %q", line)
		}
		s := sample{name: m[1], labels: map[string]string{}}
		if m[3] != "" {
			for _, pair := range splitLabels(m[3]) {
				lm := labelRe.FindStringSubmatch(pair)
				if lm == nil {
					t.Fatalf("bad label pair %q in %q", pair, line)
				}
				s.labels[lm[1]] = lm[2]
			}
		}
		v, err := strconv.ParseFloat(m[4], 64)
		if err != nil && m[4] != "+Inf" && m[4] != "-Inf" && m[4] != "NaN" {
			t.Fatalf("bad value %q in %q", m[4], line)
		}
		s.value = v
		// Every sample must belong to a family announced by HELP+TYPE.
		fam := s.name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(s.name, suf); base != s.name && types[base] == "histogram" {
				fam = base
			}
		}
		if !helps[fam] || types[fam] == "" {
			t.Fatalf("sample %q emitted before its HELP/TYPE", line)
		}
		samples = append(samples, s)
	}
	return samples, types
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// find returns the single sample with the given name and label subset.
func find(t *testing.T, samples []sample, name string, labels map[string]string) sample {
	t.Helper()
	var hits []sample
outer:
	for _, s := range samples {
		if s.name != name {
			continue
		}
		for k, v := range labels {
			if s.labels[k] != v {
				continue outer
			}
		}
		hits = append(hits, s)
	}
	if len(hits) != 1 {
		t.Fatalf("want exactly one %s%v, got %d", name, labels, len(hits))
	}
	return hits[0]
}

func TestWriteExpositionFormat(t *testing.T) {
	var m core.Metrics
	m.AddBusyWorkers(3)
	m.AddQueueDepth(7)
	m.AddQueueDepth(-2)
	h := m.Histogram("query")
	for _, d := range []time.Duration{80 * time.Microsecond, 2 * time.Millisecond, 2 * time.Millisecond, 40 * time.Millisecond} {
		h.Observe(d)
	}
	m.Histogram("flows").Observe(10 * time.Millisecond)

	var buf bytes.Buffer
	Write(&buf, &m)
	samples, types := parseExposition(t, buf.String())

	// The golden comparison: every exported number must equal the same
	// registry's expvar-facing Snapshot.
	snap := m.Snapshot()
	for name, want := range map[string]float64{
		"ayd_flows_total":              float64(snap.Flows),
		"ayd_evaluations_total":        float64(snap.Evaluations),
		"ayd_mc_simulations_total":     float64(snap.MCSimulations),
		"ayd_solver_failures_total":    float64(snap.SolverFailures),
		"ayd_cache_hits_total":         float64(snap.CacheHits),
		"ayd_cache_misses_total":       float64(snap.CacheMisses),
		"ayd_dropped_points_total":     float64(snap.DroppedPoints),
		"ayd_checkpoints_total":        float64(snap.Checkpoints),
		"ayd_mc_predicted_total":       float64(snap.MCPredicted),
		"ayd_mc_busy_workers":          float64(snap.MCBusyWorkers),
		"ayd_mc_busy_workers_peak":     float64(snap.MCBusyWorkersPeak),
		"ayd_mc_queue_depth":           float64(snap.MCQueueDepth),
		"ayd_mc_queue_depth_peak":      float64(snap.MCQueueDepthPeak),
		"ayd_mc_points_in_flight":      float64(snap.MCPointsInFlight),
		"ayd_mc_points_in_flight_peak": float64(snap.MCPointsInFlightPeak),
	} {
		if got := find(t, samples, name, nil).value; got != want {
			t.Errorf("%s = %v, want %v (snapshot)", name, got, want)
		}
	}
	if v := find(t, samples, "ayd_mc_queue_depth", nil).value; v != 5 {
		t.Errorf("queue depth gauge = %v, want 5", v)
	}
	if v := find(t, samples, "ayd_mc_queue_depth_peak", nil).value; v != 7 {
		t.Errorf("queue depth peak = %v, want 7", v)
	}
	for _, stage := range []string{"moo", "mc", "tables"} {
		find(t, samples, "ayd_stage_seconds_total", map[string]string{"stage": stage})
	}

	// No strategy recorded ⇒ the info series must be absent.
	for _, s := range samples {
		if s.name == "ayd_mc_strategy_info" || s.name == "ayd_mc_mean_ess" {
			t.Errorf("unexpected strategy series %s with no strategy set", s.name)
		}
	}
	// Likewise the cluster families: a single-node process exports none.
	for _, s := range samples {
		if strings.HasPrefix(s.name, "ayd_replica_") ||
			strings.HasPrefix(s.name, "ayd_lease") ||
			strings.HasPrefix(s.name, "ayd_mc_shards_") {
			t.Errorf("unexpected cluster series %s with no replica id set", s.name)
		}
	}

	// Histogram semantics per route.
	const fam = "ayd_http_request_duration_seconds"
	if types[fam] != "histogram" {
		t.Fatalf("%s TYPE = %q", fam, types[fam])
	}
	for route, wantCount := range map[string]float64{"query": 4, "flows": 1} {
		lbl := map[string]string{"route": route}
		count := find(t, samples, fam+"_count", lbl).value
		if count != wantCount {
			t.Errorf("route %s count = %v, want %v", route, count, wantCount)
		}
		sum := find(t, samples, fam+"_sum", lbl).value
		if sum <= 0 {
			t.Errorf("route %s sum = %v, want > 0", route, sum)
		}
		var prev float64
		var infSeen bool
		for _, s := range samples {
			if s.name != fam+"_bucket" || s.labels["route"] != route {
				continue
			}
			if s.value < prev {
				t.Fatalf("route %s bucket ladder not monotone: %v < %v", route, s.value, prev)
			}
			prev = s.value
			if s.labels["le"] == "+Inf" {
				infSeen = true
				if s.value != count {
					t.Errorf("route %s +Inf bucket %v != count %v", route, s.value, count)
				}
			} else if _, err := strconv.ParseFloat(s.labels["le"], 64); err != nil {
				t.Fatalf("route %s bad le %q", route, s.labels["le"])
			}
		}
		if !infSeen {
			t.Fatalf("route %s has no +Inf bucket", route)
		}
		// Cross-check against the expvar-facing histogram snapshot.
		if hs := snap.Latencies[route]; float64(hs.Count) != count {
			t.Errorf("route %s exposition count %v != snapshot count %d", route, count, hs.Count)
		}
	}

	if v := find(t, samples, "go_goroutines", nil).value; v < 1 {
		t.Errorf("go_goroutines = %v", v)
	}
}

// TestWriteGoldenBytes pins the deterministic prefix of the exposition
// — every family up to the process-level gauges — byte-for-byte against
// testdata/exposition.golden. The golden file was captured from the
// pre-sharding (single-atomic) metrics implementation, so this test is
// the contract that sharding counters and histogram buckets changed
// nothing observable: same families, same order, same numbers, same
// formatting. Regenerate with UPDATE_GOLDEN=1 go test ./internal/telemetry/.
func TestWriteGoldenBytes(t *testing.T) {
	var m core.Metrics
	m.AddBusyWorkers(3)
	m.AddBusyWorkers(-1)
	m.AddQueueDepth(7)
	m.AddQueueDepth(-2)
	m.AddPointsInFlight(4)
	h := m.Histogram("query")
	for _, d := range []time.Duration{
		10 * time.Microsecond, // bucket 0
		80 * time.Microsecond,
		2 * time.Millisecond,
		2 * time.Millisecond,
		40 * time.Millisecond,
		3 * time.Second,
		time.Hour, // +Inf overflow bucket
	} {
		h.Observe(d)
	}
	m.Histogram("flow_submit").Observe(10 * time.Millisecond)

	var buf bytes.Buffer
	Write(&buf, &m)
	text := buf.String()
	// Everything from go_goroutines on is process state, different on
	// every run; the prefix is fully deterministic.
	cut := strings.Index(text, "# HELP go_goroutines")
	if cut < 0 {
		t.Fatalf("exposition lost the go_goroutines family:\n%s", text)
	}
	got := text[:cut]

	const golden = "testdata/exposition.golden"
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("exposition drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestWriteClusterFamilies pins the cluster-mode additions: once a
// replica id is set, the lease and shard families appear with the
// registry's numbers, and every value round-trips through the parser.
func TestWriteClusterFamilies(t *testing.T) {
	var m core.Metrics
	m.SetReplica("replica-1")
	m.AddLeasesHeld(3)
	m.AddLeasesHeld(-1)
	m.IncLeaseAcquired()
	m.IncLeaseAcquired()
	m.IncLeaseTakeovers()
	m.IncLeaseRejections()
	for i := 0; i < 5; i++ {
		m.IncMCShardsDispatched()
	}
	m.IncMCShardsFallback()
	for i := 0; i < 7; i++ {
		m.IncMCShardsServed()
	}

	var buf bytes.Buffer
	Write(&buf, &m)
	samples, types := parseExposition(t, buf.String())

	info := find(t, samples, "ayd_replica_info", map[string]string{"replica": "replica-1"})
	if info.value != 1 {
		t.Errorf("ayd_replica_info = %v, want 1", info.value)
	}
	for name, want := range map[string]float64{
		"ayd_leases_held":                2,
		"ayd_lease_acquired_total":       2,
		"ayd_lease_takeovers_total":      1,
		"ayd_lease_rejections_total":     1,
		"ayd_mc_shards_dispatched_total": 5,
		"ayd_mc_shards_fallback_total":   1,
		"ayd_mc_shards_served_total":     7,
	} {
		if got := find(t, samples, name, nil).value; got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	for name, wantType := range map[string]string{
		"ayd_replica_info":               "gauge",
		"ayd_leases_held":                "gauge",
		"ayd_lease_acquired_total":       "counter",
		"ayd_lease_takeovers_total":      "counter",
		"ayd_lease_rejections_total":     "counter",
		"ayd_mc_shards_dispatched_total": "counter",
		"ayd_mc_shards_fallback_total":   "counter",
		"ayd_mc_shards_served_total":     "counter",
	} {
		if types[name] != wantType {
			t.Errorf("%s TYPE = %q, want %q", name, types[name], wantType)
		}
	}
}

func TestFormatters(t *testing.T) {
	if got := escapeLabel("is\"quoted\"\npath\\x"); got != `is\"quoted\"\npath\\x` {
		t.Errorf("escapeLabel = %q", got)
	}
	if got := formatValue(42); got != "42" {
		t.Errorf("formatValue(42) = %q, want no exponent", got)
	}
	if got := formatValue(0.0025); got != "0.0025" {
		t.Errorf("formatValue(0.0025) = %q", got)
	}
	if got := formatLe(math.Inf(1)); got != "+Inf" {
		t.Errorf("formatLe(+Inf) = %q", got)
	}
}

func TestHandler(t *testing.T) {
	var m core.Metrics
	m.Histogram("q").Observe(time.Millisecond)
	rec := httptest.NewRecorder()
	Handler(&m).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Fatalf("Content-Type = %q", ct)
	}
	if cl := rec.Header().Get("Content-Length"); cl != fmt.Sprint(rec.Body.Len()) {
		t.Fatalf("Content-Length %s != body %d", cl, rec.Body.Len())
	}
	parseExposition(t, rec.Body.String())
}
