package store

import (
	"errors"
	"fmt"
	"time"
)

// Lease coordination. A lease is an exclusive, TTL-bounded claim on a
// (tenant, name) pair — the unit replicas sharing one store use to
// decide which of them owns a flow job. The protocol is the classic
// fencing-token design:
//
//   - AcquireLease succeeds only when no live lease exists for the
//     name; the returned Lease carries a fencing token that is strictly
//     greater than every token ever issued for that name.
//   - The holder heartbeats with RenewLease; a holder that stops
//     renewing (crash, partition) loses the name once the TTL passes,
//     and any peer may acquire it — with a higher token.
//   - ReleaseLease ends the claim immediately (a draining replica calls
//     it so a peer need not wait out the TTL).
//   - PutIfLeased is the fenced write: it refuses to write when the
//     lease has been lost, and it refuses — even during the hand-over
//     race — once a successor holding a higher token has begun writing
//     the same artefact. A zombie replica that kept running after its
//     lease expired therefore cannot clobber its successor's progress.
//
// Tokens are monotonic per (tenant, name) for the lifetime of the
// store root, never reused, and never regress: the Disk backend keeps
// the highest token's file forever, the Memory backend a counter.

// Lease is one held claim on (Tenant, Name). The zero value is not a
// valid lease.
type Lease struct {
	Tenant string
	Name   string
	// Owner identifies the holder (a replica ID); renewals and releases
	// verify it so one process cannot accidentally operate another's
	// lease.
	Owner string
	// Token is the fencing token: strictly monotonic per (Tenant, Name)
	// across the store's lifetime. A holder presenting a token lower
	// than the highest ever issued for the name has lost the lease.
	Token uint64
	// Expires is when the claim lapses unless renewed.
	Expires time.Time
}

// Valid reports whether the lease is structurally a lease (it says
// nothing about whether it is still held).
func (l Lease) Valid() bool {
	return l.Tenant != "" && l.Name != "" && l.Owner != "" && l.Token > 0
}

// Lease sentinel errors.
var (
	// ErrLeaseHeld reports an acquisition attempt against a live lease
	// held by someone (possibly the caller — re-entry goes through
	// RenewLease, not AcquireLease).
	ErrLeaseHeld = errors.New("store: lease held")
	// ErrLeaseLost reports an operation with a lease that is no longer
	// the name's live claim: it expired and a peer took over (higher
	// token exists), or it was released.
	ErrLeaseLost = errors.New("store: lease lost")
)

// minLeaseTTL floors the requested TTL: a sub-millisecond lease cannot
// survive the filesystem round trips that renew it.
const minLeaseTTL = 10 * time.Millisecond

// validLeaseArgs vets the acquire arguments shared by both backends.
func validLeaseArgs(tenant, name, owner string, ttl time.Duration) error {
	if err := ValidateKey(tenant); err != nil {
		return fmt.Errorf("tenant: %w", err)
	}
	if err := ValidateKey(name); err != nil {
		return fmt.Errorf("name: %w", err)
	}
	if err := ValidateKey(owner); err != nil {
		return fmt.Errorf("owner: %w", err)
	}
	if ttl <= 0 {
		return fmt.Errorf("%w: non-positive lease ttl %v", ErrInvalidKey, ttl)
	}
	return nil
}

// clampTTL applies the TTL floor.
func clampTTL(ttl time.Duration) time.Duration {
	if ttl < minLeaseTTL {
		return minLeaseTTL
	}
	return ttl
}
