// Package store is the durable, multi-tenant artefact layer behind the
// ayd service: behavioural models and flow-job checkpoints serialized
// into a versioned, self-describing artefact format and addressed by
// (tenant, kind, name, version).
//
// Versions are content addresses — the sha256 of the canonical payload
// serialization — so identical artefacts deduplicate, a version pin can
// never silently change meaning, and every read re-verifies the payload
// against its address. The Disk backend keeps one immutable blob file
// per version plus tiny per-name ref files updated by atomic rename, so
// N stateless server replicas can share one store directory: writes
// never tear, and readers always see either the old or the new latest
// version of a name.
//
// Two production backends implement Store: Memory (process-lifetime,
// for tests and ephemeral serving) and Disk (shared durable catalog).
package store

import (
	"errors"
	"fmt"
	"time"
)

// DefaultTenant is the namespace behind the pre-tenancy /v1 API routes;
// artefacts installed without an explicit tenant land here.
const DefaultTenant = "default"

// Kind partitions a tenant's namespace by artefact type.
type Kind string

const (
	// KindModel holds canonical model payloads (core.EncodeModel).
	KindModel Kind = "models"
	// KindCheckpoint holds flow-job resume state (the gob checkpoint
	// stream written by core.RunFlow), persisted so any replica can
	// resume any job after a crash.
	KindCheckpoint Kind = "checkpoints"
	// KindJob holds pending flow-job records (the serialized submission
	// request): a replica writes one at submission and deletes it when
	// the job reaches a terminal state, so a surviving peer can discover
	// and adopt jobs whose owner crashed or drained.
	KindJob Kind = "jobs"
)

// Key identifies one stored artefact. An empty Version addresses the
// latest version of the name.
type Key struct {
	Tenant  string
	Kind    Kind
	Name    string
	Version string
}

// Info describes a stored artefact.
type Info struct {
	Key
	// Size is the payload size in bytes (excluding the artefact header).
	Size int64
	// Created is when this version was written to this store.
	Created time.Time
}

// Store is the pluggable persistence interface the server's registry
// and job manager sit on. Implementations must be safe for concurrent
// use; Disk implementations must additionally tolerate concurrent use
// of one root by several processes.
type Store interface {
	// Put writes payload as a new version of (tenant, kind, name) and
	// makes it the latest. The returned Info carries the content-derived
	// version. Writing a payload that already exists under the same key
	// is idempotent.
	Put(tenant string, kind Kind, name string, payload []byte) (Info, error)

	// Get returns the payload and metadata for key; Key.Version == ""
	// resolves the latest version. A missing artefact reports
	// ErrNotFound; a damaged one reports an error wrapping ErrCorrupt.
	Get(key Key) ([]byte, Info, error)

	// Stat describes an artefact without reading its payload.
	Stat(key Key) (Info, error)

	// List enumerates the latest version of every name under
	// (tenant, kind), sorted by name. An unknown tenant lists empty.
	List(tenant string, kind Kind) ([]Info, error)

	// Tenants enumerates every tenant with at least one artefact,
	// sorted.
	Tenants() ([]string, error)

	// Delete removes an artefact. With Key.Version == "" every version
	// of the name is removed. Deleting a missing artefact reports
	// ErrNotFound.
	Delete(key Key) error

	// Backend names the implementation ("memory", "disk") for health
	// reporting.
	Backend() string

	// AcquireLease claims exclusive, TTL-bounded ownership of
	// (tenant, name) for owner. It fails with ErrLeaseHeld while a live
	// lease exists (held by anyone — re-entry goes through RenewLease).
	// The returned lease's fencing token is strictly greater than every
	// token previously issued for the name. See lease.go for the
	// protocol.
	AcquireLease(tenant, name, owner string, ttl time.Duration) (Lease, error)

	// RenewLease extends a held lease by ttl from now, returning the
	// updated lease. It fails with ErrLeaseLost once a higher token has
	// been issued for the name (a peer took over) or the owner does not
	// match.
	RenewLease(l Lease, ttl time.Duration) (Lease, error)

	// ReleaseLease ends a held claim immediately, making the name
	// acquirable without waiting out the TTL. Releasing a lease that was
	// already lost reports ErrLeaseLost (harmless — the claim is gone
	// either way).
	ReleaseLease(l Lease) error

	// PutIfLeased writes payload under (l.Tenant, kind, name) like Put,
	// but fenced by l: the write is refused with ErrLeaseLost when the
	// lease is no longer the live claim on (l.Tenant, l.Name), or when a
	// successor holding a higher fencing token has already begun writing
	// this artefact — so a zombie holder cannot regress its successor's
	// progress.
	PutIfLeased(l Lease, kind Kind, name string, payload []byte) (Info, error)
}

// Sentinel errors. Corruption sub-errors (bad magic, truncation,
// fingerprint mismatch) all wrap ErrCorrupt, so callers match the whole
// family with errors.Is(err, ErrCorrupt).
var (
	ErrNotFound   = errors.New("store: artefact not found")
	ErrInvalidKey = errors.New("store: invalid key")

	ErrCorrupt     = errors.New("store: corrupt artefact")
	ErrBadMagic    = fmt.Errorf("%w: bad magic", ErrCorrupt)
	ErrBadVersion  = fmt.Errorf("%w: unsupported format version", ErrCorrupt)
	ErrTruncated   = fmt.Errorf("%w: truncated", ErrCorrupt)
	ErrFingerprint = fmt.Errorf("%w: fingerprint mismatch", ErrCorrupt)
)

// maxKeyLen bounds tenant and name segments: long enough for
// descriptive catalog names, short enough that every filesystem and
// URL path accepts them.
const maxKeyLen = 100

// ValidateKey vets one key segment (a tenant or a name) for use as a
// path component and URL element: non-empty, at most 100 bytes, ASCII
// letters/digits/dot/dash/underscore only, no separators, and no
// leading dot (which also rejects "." and ".." — nothing a segment can
// contain escapes the store root or hides files).
func ValidateKey(segment string) error {
	if segment == "" {
		return fmt.Errorf("%w: empty segment", ErrInvalidKey)
	}
	if len(segment) > maxKeyLen {
		return fmt.Errorf("%w: segment longer than %d bytes", ErrInvalidKey, maxKeyLen)
	}
	if segment[0] == '.' {
		return fmt.Errorf("%w: segment %q starts with a dot", ErrInvalidKey, segment)
	}
	for i := 0; i < len(segment); i++ {
		c := segment[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return fmt.Errorf("%w: segment %q contains %q", ErrInvalidKey, segment, c)
		}
	}
	return nil
}

// validKey vets a full lookup key (version optional).
func validKey(key Key) error {
	if err := ValidateKey(key.Tenant); err != nil {
		return fmt.Errorf("tenant: %w", err)
	}
	if err := ValidateKey(key.Name); err != nil {
		return fmt.Errorf("name: %w", err)
	}
	switch key.Kind {
	case KindModel, KindCheckpoint, KindJob:
	default:
		return fmt.Errorf("%w: unknown kind %q", ErrInvalidKey, key.Kind)
	}
	if key.Version != "" {
		if err := validVersion(key.Version); err != nil {
			return err
		}
	}
	return nil
}

// validVersion vets a version string: lowercase-hex sha256.
func validVersion(v string) error {
	if len(v) != 64 {
		return fmt.Errorf("%w: version %q is not a sha256 hex digest", ErrInvalidKey, v)
	}
	for i := 0; i < len(v); i++ {
		c := v[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("%w: version %q is not a sha256 hex digest", ErrInvalidKey, v)
		}
	}
	return nil
}
