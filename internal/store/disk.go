package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Disk is the durable Store backend: a content-addressed blob area plus
// tiny per-name ref files, safe for concurrent use by multiple
// processes sharing one root.
//
//	root/
//	  blobs/<vv>/<version>                 immutable artefact envelopes
//	  t/<tenant>/<kind>/<name>/refs/<version>   one file per version (content: payload size)
//	  t/<tenant>/<kind>/<name>/LATEST           current version string
//
// Blobs are written once via temp-file + rename and never modified:
// two replicas racing to Put identical content converge on the same
// blob path, and a Put of new content only becomes visible when the
// LATEST rename lands — readers see the old or the new version, never
// a torn one. Deleting refs leaves blobs in place (they may be shared
// across names and tenants); a missing blob behind a live ref is
// reported as corruption, never a panic.
type Disk struct {
	root string
}

// OpenDisk opens (lazily creating) a disk store rooted at root. The
// root is created on first write, so opening a store for read-only use
// of an empty directory performs no I/O.
func OpenDisk(root string) *Disk { return &Disk{root: root} }

// Backend implements Store.
func (s *Disk) Backend() string { return "disk" }

// Root reports the store's root directory.
func (s *Disk) Root() string { return s.root }

const latestFile = "LATEST"

func (s *Disk) blobPath(version string) string {
	return filepath.Join(s.root, "blobs", version[:2], version)
}

func (s *Disk) nameDir(tenant string, kind Kind, name string) string {
	return filepath.Join(s.root, "t", tenant, string(kind), name)
}

// writeFileAtomic writes data to path via a temp file + rename, so a
// crash or a racing reader never observes a partial file.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Put implements Store.
func (s *Disk) Put(tenant string, kind Kind, name string, payload []byte) (Info, error) {
	key := Key{Tenant: tenant, Kind: kind, Name: name}
	if err := validKey(key); err != nil {
		return Info{}, err
	}
	key.Version = Version(payload)

	// 1. Blob: skip the write when the content already exists (identical
	// content from any tenant/name lands on the same blob).
	bp := s.blobPath(key.Version)
	if _, err := os.Stat(bp); err != nil {
		if err := writeFileAtomic(bp, encodeArtefact(kind, payload)); err != nil {
			return Info{}, fmt.Errorf("store: writing blob: %w", err)
		}
	}
	// 2. Ref: records the version under the name; content is the payload
	// size so Stat/List never open the blob.
	nd := s.nameDir(tenant, kind, name)
	ref := filepath.Join(nd, "refs", key.Version)
	if err := writeFileAtomic(ref, []byte(strconv.Itoa(len(payload)))); err != nil {
		return Info{}, fmt.Errorf("store: writing ref: %w", err)
	}
	// 3. Latest pointer: the atomic rename is the moment the new version
	// becomes the name's answer.
	if err := writeFileAtomic(filepath.Join(nd, latestFile), []byte(key.Version)); err != nil {
		return Info{}, fmt.Errorf("store: writing latest: %w", err)
	}
	created := time.Now()
	if st, err := os.Stat(ref); err == nil {
		created = st.ModTime()
	}
	return Info{Key: key, Size: int64(len(payload)), Created: created}, nil
}

// resolve fills in key.Version (via LATEST when empty) and returns the
// ref metadata.
func (s *Disk) resolve(key Key) (Key, Info, error) {
	if err := validKey(key); err != nil {
		return key, Info{}, err
	}
	nd := s.nameDir(key.Tenant, key.Kind, key.Name)
	if key.Version == "" {
		b, err := os.ReadFile(filepath.Join(nd, latestFile))
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return key, Info{}, fmt.Errorf("%w: %s/%s/%s", ErrNotFound, key.Tenant, key.Kind, key.Name)
			}
			return key, Info{}, fmt.Errorf("store: reading latest: %w", err)
		}
		v := strings.TrimSpace(string(b))
		if err := validVersion(v); err != nil {
			return key, Info{}, fmt.Errorf("%w: latest pointer of %s/%s/%s is %q",
				ErrCorrupt, key.Tenant, key.Kind, key.Name, v)
		}
		key.Version = v
	}
	ref := filepath.Join(nd, "refs", key.Version)
	st, err := os.Stat(ref)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return key, Info{}, fmt.Errorf("%w: %s/%s/%s@%s", ErrNotFound, key.Tenant, key.Kind, key.Name, key.Version)
		}
		return key, Info{}, fmt.Errorf("store: reading ref: %w", err)
	}
	info := Info{Key: key, Created: st.ModTime()}
	if b, err := os.ReadFile(ref); err == nil {
		if n, perr := strconv.ParseInt(strings.TrimSpace(string(b)), 10, 64); perr == nil {
			info.Size = n
		}
	}
	return key, info, nil
}

// Get implements Store.
func (s *Disk) Get(key Key) ([]byte, Info, error) {
	key, info, err := s.resolve(key)
	if err != nil {
		return nil, Info{}, err
	}
	blob, err := os.ReadFile(s.blobPath(key.Version))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			// The ref promises a version whose content is gone: that is a
			// damaged store, not an absent artefact.
			return nil, Info{}, fmt.Errorf("%w: blob %s missing for %s/%s/%s",
				ErrCorrupt, key.Version, key.Tenant, key.Kind, key.Name)
		}
		return nil, Info{}, fmt.Errorf("store: reading blob: %w", err)
	}
	payload, err := decodeArtefact(blob, key.Kind, key.Version)
	if err != nil {
		return nil, Info{}, fmt.Errorf("%s/%s/%s@%s: %w", key.Tenant, key.Kind, key.Name, key.Version, err)
	}
	return payload, info, nil
}

// Stat implements Store.
func (s *Disk) Stat(key Key) (Info, error) {
	_, info, err := s.resolve(key)
	return info, err
}

// List implements Store.
func (s *Disk) List(tenant string, kind Kind) ([]Info, error) {
	if err := validKey(Key{Tenant: tenant, Kind: kind, Name: "x"}); err != nil {
		return nil, err
	}
	dir := filepath.Join(s.root, "t", tenant, string(kind))
	ents, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: listing %s/%s: %w", tenant, kind, err)
	}
	var out []Info
	for _, e := range ents {
		if !e.IsDir() || ValidateKey(e.Name()) != nil {
			continue
		}
		_, info, err := s.resolve(Key{Tenant: tenant, Kind: kind, Name: e.Name()})
		if err != nil {
			// A half-deleted or damaged name must not hide the healthy
			// rest of the catalog; Get reports its precise failure.
			continue
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Tenants implements Store.
func (s *Disk) Tenants() ([]string, error) {
	ents, err := os.ReadDir(filepath.Join(s.root, "t"))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: listing tenants: %w", err)
	}
	var out []string
	for _, e := range ents {
		if e.IsDir() && ValidateKey(e.Name()) == nil {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// Delete implements Store. Blobs stay behind (content may be shared);
// only the name's refs go away.
func (s *Disk) Delete(key Key) error {
	wantAll := key.Version == ""
	key, _, err := s.resolve(key)
	if err != nil {
		return err
	}
	nd := s.nameDir(key.Tenant, key.Kind, key.Name)
	if wantAll {
		return os.RemoveAll(nd)
	}
	if err := os.Remove(filepath.Join(nd, "refs", key.Version)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: deleting ref: %w", err)
	}
	// If the deleted version was latest, promote the newest remaining
	// ref, or drop the name entirely when none remain.
	lb, err := os.ReadFile(filepath.Join(nd, latestFile))
	if err != nil || strings.TrimSpace(string(lb)) != key.Version {
		return nil
	}
	refs, err := os.ReadDir(filepath.Join(nd, "refs"))
	if err != nil || len(refs) == 0 {
		return os.RemoveAll(nd)
	}
	newest, newestT := "", time.Time{}
	for _, r := range refs {
		st, err := r.Info()
		if err != nil {
			continue
		}
		if newest == "" || st.ModTime().After(newestT) {
			newest, newestT = r.Name(), st.ModTime()
		}
	}
	if newest == "" {
		return os.RemoveAll(nd)
	}
	return writeFileAtomic(filepath.Join(nd, latestFile), []byte(newest))
}
