// The on-disk artefact format: a self-describing binary envelope around
// an opaque payload. Every field a reader needs to reject the wrong
// file — magic, format version, kind, payload fingerprint, payload
// length — precedes the payload, and the fingerprint doubles as the
// artefact's content address, so decoding re-verifies the payload
// against the version it was fetched by.
//
//	offset  size  field
//	0       4     magic "AYDA"
//	4       2     format version (big endian uint16)
//	6       1     kind length K
//	7       K     kind (ASCII)
//	7+K     32    sha256(payload)
//	39+K    8     payload length N (big endian uint64)
//	47+K    N     payload
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// Magic identifies an ayd artefact file.
var Magic = [4]byte{'A', 'Y', 'D', 'A'}

// FormatVersion is the current artefact envelope version; bump on
// incompatible envelope change.
const FormatVersion uint16 = 1

// fingerprint computes an artefact payload's content address.
func fingerprint(payload []byte) [32]byte { return sha256.Sum256(payload) }

// Version renders a payload's content address as the store version
// string.
func Version(payload []byte) string {
	fp := fingerprint(payload)
	return hex.EncodeToString(fp[:])
}

// encodeArtefact wraps payload in the versioned envelope.
func encodeArtefact(kind Kind, payload []byte) []byte {
	k := []byte(kind)
	fp := fingerprint(payload)
	out := make([]byte, 0, 4+2+1+len(k)+32+8+len(payload))
	out = append(out, Magic[:]...)
	out = binary.BigEndian.AppendUint16(out, FormatVersion)
	out = append(out, byte(len(k)))
	out = append(out, k...)
	out = append(out, fp[:]...)
	out = binary.BigEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, payload...)
	return out
}

// decodeArtefact unwraps an envelope, verifying every layer: magic,
// format version, kind, declared length, and the payload fingerprint.
// wantVersion, when non-empty, is the content address the artefact was
// fetched by; a mismatch is corruption (the blob does not contain what
// its name promises). The returned slice aliases b.
func decodeArtefact(b []byte, kind Kind, wantVersion string) ([]byte, error) {
	if len(b) < 7 {
		return nil, fmt.Errorf("%w: %d-byte artefact", ErrTruncated, len(b))
	}
	if !bytes.Equal(b[:4], Magic[:]) {
		return nil, fmt.Errorf("%w: got % x", ErrBadMagic, b[:4])
	}
	if v := binary.BigEndian.Uint16(b[4:6]); v != FormatVersion {
		return nil, fmt.Errorf("%w: got %d, support %d", ErrBadVersion, v, FormatVersion)
	}
	klen := int(b[6])
	rest := b[7:]
	if len(rest) < klen+32+8 {
		return nil, fmt.Errorf("%w: header ends at %d bytes", ErrTruncated, len(b))
	}
	gotKind := Kind(rest[:klen])
	if gotKind != kind {
		return nil, fmt.Errorf("%w: artefact kind %q, want %q", ErrCorrupt, gotKind, kind)
	}
	var declared [32]byte
	copy(declared[:], rest[klen:klen+32])
	n := binary.BigEndian.Uint64(rest[klen+32 : klen+40])
	payload := rest[klen+40:]
	if uint64(len(payload)) != n {
		return nil, fmt.Errorf("%w: payload %d bytes, header declares %d", ErrTruncated, len(payload), n)
	}
	if fp := fingerprint(payload); fp != declared {
		return nil, fmt.Errorf("%w: payload hash %s, header declares %s",
			ErrFingerprint, hex.EncodeToString(fp[:]), hex.EncodeToString(declared[:]))
	}
	if wantVersion != "" && hex.EncodeToString(declared[:]) != wantVersion {
		return nil, fmt.Errorf("%w: artefact is version %s, fetched as %s",
			ErrFingerprint, hex.EncodeToString(declared[:]), wantVersion)
	}
	return payload, nil
}
