package store

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// leaseBackends runs a subtest against both backends (mirrors the
// artefact conformance suite).
func leaseBackends(t *testing.T, fn func(t *testing.T, s Store)) {
	t.Helper()
	t.Run("memory", func(t *testing.T) { fn(t, NewMemory()) })
	t.Run("disk", func(t *testing.T) { fn(t, OpenDisk(t.TempDir())) })
}

func TestLeaseLifecycle(t *testing.T) {
	leaseBackends(t, func(t *testing.T, s Store) {
		l, err := s.AcquireLease("default", "job1", "replica-a", time.Minute)
		if err != nil {
			t.Fatalf("acquire: %v", err)
		}
		if l.Token == 0 || l.Owner != "replica-a" {
			t.Fatalf("bad lease: %+v", l)
		}
		// Held: nobody else can acquire, not even the holder.
		if _, err := s.AcquireLease("default", "job1", "replica-b", time.Minute); !errors.Is(err, ErrLeaseHeld) {
			t.Fatalf("want ErrLeaseHeld, got %v", err)
		}
		if _, err := s.AcquireLease("default", "job1", "replica-a", time.Minute); !errors.Is(err, ErrLeaseHeld) {
			t.Fatalf("re-acquire by holder: want ErrLeaseHeld, got %v", err)
		}
		// A different name is independent.
		if _, err := s.AcquireLease("default", "job2", "replica-b", time.Minute); err != nil {
			t.Fatalf("acquire other name: %v", err)
		}
		// Renew extends; the token is stable.
		l2, err := s.RenewLease(l, time.Minute)
		if err != nil {
			t.Fatalf("renew: %v", err)
		}
		if l2.Token != l.Token {
			t.Fatalf("renew changed token %d -> %d", l.Token, l2.Token)
		}
		if !l2.Expires.After(l.Expires.Add(-time.Second)) {
			t.Fatalf("renew did not extend: %v -> %v", l.Expires, l2.Expires)
		}
		// Release frees immediately; the next acquisition gets a higher
		// token.
		if err := s.ReleaseLease(l2); err != nil {
			t.Fatalf("release: %v", err)
		}
		l3, err := s.AcquireLease("default", "job1", "replica-b", time.Minute)
		if err != nil {
			t.Fatalf("acquire after release: %v", err)
		}
		if l3.Token <= l2.Token {
			t.Fatalf("token regressed: %d after %d", l3.Token, l2.Token)
		}
		// The old holder's handle is dead.
		if _, err := s.RenewLease(l2, time.Minute); !errors.Is(err, ErrLeaseLost) {
			t.Fatalf("renew after takeover: want ErrLeaseLost, got %v", err)
		}
		if err := s.ReleaseLease(l2); !errors.Is(err, ErrLeaseLost) {
			t.Fatalf("release after takeover: want ErrLeaseLost, got %v", err)
		}
	})
}

func TestLeaseExpiry(t *testing.T) {
	leaseBackends(t, func(t *testing.T, s Store) {
		l, err := s.AcquireLease("default", "job1", "replica-a", 20*time.Millisecond)
		if err != nil {
			t.Fatalf("acquire: %v", err)
		}
		// Live: a peer is refused.
		if _, err := s.AcquireLease("default", "job1", "replica-b", time.Minute); !errors.Is(err, ErrLeaseHeld) {
			t.Fatalf("want ErrLeaseHeld, got %v", err)
		}
		time.Sleep(40 * time.Millisecond)
		// Lapsed: the peer takes over with a higher token.
		l2, err := s.AcquireLease("default", "job1", "replica-b", time.Minute)
		if err != nil {
			t.Fatalf("acquire after expiry: %v", err)
		}
		if l2.Token <= l.Token {
			t.Fatalf("token regressed: %d after %d", l2.Token, l.Token)
		}
		if _, err := s.RenewLease(l, time.Minute); !errors.Is(err, ErrLeaseLost) {
			t.Fatalf("zombie renew: want ErrLeaseLost, got %v", err)
		}
	})
}

func TestLeaseValidation(t *testing.T) {
	leaseBackends(t, func(t *testing.T, s Store) {
		cases := []struct{ tenant, name, owner string }{
			{"", "n", "o"},
			{"t", "", "o"},
			{"t", "n", ""},
			{"../t", "n", "o"},
			{"t", "a/b", "o"},
		}
		for _, c := range cases {
			if _, err := s.AcquireLease(c.tenant, c.name, c.owner, time.Minute); !errors.Is(err, ErrInvalidKey) {
				t.Errorf("acquire(%q,%q,%q): want ErrInvalidKey, got %v", c.tenant, c.name, c.owner, err)
			}
		}
		if _, err := s.AcquireLease("t", "n", "o", -time.Second); !errors.Is(err, ErrInvalidKey) {
			t.Errorf("negative ttl: want ErrInvalidKey, got %v", err)
		}
		if _, err := s.RenewLease(Lease{}, time.Minute); !errors.Is(err, ErrInvalidKey) {
			t.Errorf("renew zero lease: want ErrInvalidKey, got %v", err)
		}
		if err := s.ReleaseLease(Lease{}); !errors.Is(err, ErrInvalidKey) {
			t.Errorf("release zero lease: want ErrInvalidKey, got %v", err)
		}
	})
}

// TestLeaseContention is the -race contention hammer: many goroutines
// across TWO store handles on the same backing state race to acquire
// one name; every round must elect exactly one winner.
func TestLeaseContention(t *testing.T) {
	root := t.TempDir()
	mem := NewMemory()
	stores := map[string][2]Store{
		// Two Disk handles on one root model two replica processes
		// sharing the directory.
		"disk":   {OpenDisk(root), OpenDisk(root)},
		"memory": {mem, mem},
	}
	for name, pair := range stores {
		t.Run(name, func(t *testing.T) {
			const contenders = 8
			rounds := 20
			if testing.Short() {
				rounds = 5
			}
			for round := 0; round < rounds; round++ {
				job := fmt.Sprintf("job-%03d", round)
				var (
					wg      sync.WaitGroup
					mu      sync.Mutex
					winners []Lease
				)
				start := make(chan struct{})
				for c := 0; c < contenders; c++ {
					wg.Add(1)
					go func(c int) {
						defer wg.Done()
						st := pair[c%2]
						owner := fmt.Sprintf("replica-%d", c)
						<-start
						l, err := st.AcquireLease("default", job, owner, time.Minute)
						if err == nil {
							mu.Lock()
							winners = append(winners, l)
							mu.Unlock()
						} else if !errors.Is(err, ErrLeaseHeld) {
							t.Errorf("round %d owner %s: unexpected error %v", round, owner, err)
						}
					}(c)
				}
				close(start)
				wg.Wait()
				if len(winners) != 1 {
					t.Fatalf("round %d: %d winners, want exactly 1 (%+v)", round, len(winners), winners)
				}
				if err := pair[0].ReleaseLease(winners[0]); err != nil {
					// The winner's handle may belong to the other store;
					// release through it instead.
					if err2 := pair[1].ReleaseLease(winners[0]); err2 != nil {
						t.Fatalf("round %d release: %v / %v", round, err, err2)
					}
				}
			}
		})
	}
}

// TestLeaseFencingRejectsZombie pins the fencing contract: after a
// lease expires and a successor takes over and writes, the zombie
// original's fenced writes are rejected — it cannot clobber the
// successor's progress.
func TestLeaseFencingRejectsZombie(t *testing.T) {
	leaseBackends(t, func(t *testing.T, s Store) {
		zombie, err := s.AcquireLease("default", "m", "replica-a", 20*time.Millisecond)
		if err != nil {
			t.Fatalf("acquire: %v", err)
		}
		// The holder writes a first checkpoint while live.
		if _, err := s.PutIfLeased(zombie, KindCheckpoint, "m", []byte("ckpt-1")); err != nil {
			t.Fatalf("live fenced write: %v", err)
		}
		time.Sleep(40 * time.Millisecond) // lease lapses; holder doesn't notice

		succ, err := s.AcquireLease("default", "m", "replica-b", time.Minute)
		if err != nil {
			t.Fatalf("takeover: %v", err)
		}
		if _, err := s.PutIfLeased(succ, KindCheckpoint, "m", []byte("ckpt-2")); err != nil {
			t.Fatalf("successor fenced write: %v", err)
		}

		// The zombie wakes up and tries to write its stale state.
		if _, err := s.PutIfLeased(zombie, KindCheckpoint, "m", []byte("ckpt-stale")); !errors.Is(err, ErrLeaseLost) {
			t.Fatalf("zombie write: want ErrLeaseLost, got %v", err)
		}
		// The successor's checkpoint is untouched.
		got, _, err := s.Get(Key{Tenant: "default", Kind: KindCheckpoint, Name: "m"})
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		if string(got) != "ckpt-2" {
			t.Fatalf("checkpoint clobbered: %q", got)
		}
		// An expired-but-unclaimed lease also refuses writes: expiry alone
		// fences, takeover is not required.
		l3, err := s.AcquireLease("default", "m2", "replica-a", 20*time.Millisecond)
		if err != nil {
			t.Fatalf("acquire m2: %v", err)
		}
		time.Sleep(40 * time.Millisecond)
		if _, err := s.PutIfLeased(l3, KindCheckpoint, "m2", []byte("x")); !errors.Is(err, ErrLeaseLost) {
			t.Fatalf("expired write: want ErrLeaseLost, got %v", err)
		}
	})
}

// TestLeaseDiskCrashRecovery simulates a crashed holder: the lease
// file exists with a future expiry but nobody renews. A second store
// handle on the same root takes over exactly once the TTL lapses.
func TestLeaseDiskCrashRecovery(t *testing.T) {
	root := t.TempDir()
	a, b := OpenDisk(root), OpenDisk(root)
	l, err := a.AcquireLease("default", "job1", "replica-a", 50*time.Millisecond)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	// "Crash": replica-a is gone; b polls until the TTL admits it.
	deadline := time.Now().Add(5 * time.Second)
	var l2 Lease
	for {
		l2, err = b.AcquireLease("default", "job1", "replica-b", time.Minute)
		if err == nil {
			break
		}
		if !errors.Is(err, ErrLeaseHeld) {
			t.Fatalf("takeover poll: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("takeover never admitted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if l2.Token <= l.Token {
		t.Fatalf("token regressed across crash: %d after %d", l2.Token, l.Token)
	}
	if !time.Now().After(l.Expires) {
		t.Fatalf("takeover admitted before expiry %v", l.Expires)
	}
}
