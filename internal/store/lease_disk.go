package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// Disk leases. Layout under the store root:
//
//	root/leases/<tenant>/<name>/t-<%016x>          one file per issued token
//	root/t/<tenant>/<kind>/<name>/fence/t-<%016x>  fenced-write marks
//
// The token file's NAME is the fencing token (hex, fixed width, so the
// lexically largest entry is the numerically largest token); its
// content records the owner and expiry. Arbitration is O_EXCL: every
// acquirer computes max+1 and tries to create that exact file — the
// filesystem lets exactly one racer win, and the loser sees EEXIST.
// Renew and release rewrite the holder's own token file via atomic
// rename, so readers never observe a torn record. The highest token
// file is never deleted (lower ones are garbage-collected), so tokens
// stay monotonic across crashes, releases and expirations for the
// lifetime of the store root.
//
// Crash safety: a holder that dies simply stops renewing and the claim
// lapses at its recorded expiry. A crash between the O_EXCL create and
// the content write leaves an empty token file; readers treat such a
// file as held until its mtime plus a grace period, so the claim still
// lapses and liveness is preserved (and no other process can ever
// claim that token number — safety is untouched).

// leaseRecord is the token file's JSON content.
type leaseRecord struct {
	Owner string `json:"owner"`
	// ExpiresNS is the expiry as UNIX nanoseconds (0 = released).
	ExpiresNS int64 `json:"expires_ns"`
}

// staleTokenGrace bounds how long an unreadable (torn/empty) token file
// blocks acquisition, measured from its mtime.
const staleTokenGrace = 5 * time.Second

const tokenPrefix = "t-"

func tokenFileName(token uint64) string {
	return fmt.Sprintf(tokenPrefix+"%016x", token)
}

func parseTokenFileName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, tokenPrefix) || len(name) != len(tokenPrefix)+16 {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(tokenPrefix):], 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

func (s *Disk) leaseDir(tenant, name string) string {
	return filepath.Join(s.root, "leases", tenant, name)
}

func (s *Disk) fenceDir(tenant string, kind Kind, name string) string {
	return filepath.Join(s.nameDir(tenant, kind, name), "fence")
}

// maxToken scans dir for the highest token file. A missing directory is
// token 0 (never issued).
func maxToken(dir string) (uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, nil
		}
		return 0, fmt.Errorf("store: listing leases: %w", err)
	}
	var max uint64
	for _, e := range ents {
		if n, ok := parseTokenFileName(e.Name()); ok && n > max {
			max = n
		}
	}
	return max, nil
}

// readTokenFile reads one token's record. An unreadable or torn record
// (crash mid-create) reports held=true until mtime+staleTokenGrace.
func readTokenFile(path string) (rec leaseRecord, expires time.Time, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return rec, time.Time{}, err
	}
	if jerr := json.Unmarshal(b, &rec); jerr != nil || rec.Owner == "" {
		// Torn or empty: fall back to the file clock so the claim still
		// lapses.
		if st, serr := os.Stat(path); serr == nil {
			return leaseRecord{}, st.ModTime().Add(staleTokenGrace), nil
		}
		return rec, time.Time{}, nil
	}
	if rec.ExpiresNS == 0 {
		return rec, time.Time{}, nil // released
	}
	return rec, time.Unix(0, rec.ExpiresNS), nil
}

// writeTokenExclusive creates the token file with O_EXCL — the atomic
// arbitration point. os.ErrExist means another acquirer won the race.
func writeTokenExclusive(path string, rec leaseRecord) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	b, _ := json.Marshal(rec)
	if _, werr := f.Write(b); werr != nil {
		f.Close()
		return werr
	}
	return f.Close()
}

// AcquireLease implements Store.
func (s *Disk) AcquireLease(tenant, name, owner string, ttl time.Duration) (Lease, error) {
	if err := validLeaseArgs(tenant, name, owner, ttl); err != nil {
		return Lease{}, err
	}
	ttl = clampTTL(ttl)
	dir := s.leaseDir(tenant, name)
	max, err := maxToken(dir)
	if err != nil {
		return Lease{}, err
	}
	now := time.Now()
	if max > 0 {
		rec, expires, err := readTokenFile(filepath.Join(dir, tokenFileName(max)))
		switch {
		case err != nil && !errors.Is(err, fs.ErrNotExist):
			return Lease{}, fmt.Errorf("store: reading lease: %w", err)
		case err == nil && now.Before(expires):
			return Lease{}, fmt.Errorf("%w: %s/%s by %q until %s",
				ErrLeaseHeld, tenant, name, rec.Owner, expires.Format(time.RFC3339Nano))
		}
	}
	next := max + 1
	expires := now.Add(ttl)
	err = writeTokenExclusive(filepath.Join(dir, tokenFileName(next)),
		leaseRecord{Owner: owner, ExpiresNS: expires.UnixNano()})
	if err != nil {
		if errors.Is(err, fs.ErrExist) {
			// A concurrent acquirer created this exact token first; the
			// filesystem arbitrated, we lost.
			return Lease{}, fmt.Errorf("%w: %s/%s lost acquisition race", ErrLeaseHeld, tenant, name)
		}
		return Lease{}, fmt.Errorf("store: writing lease: %w", err)
	}
	// Garbage-collect dead history: every token below ours is settled.
	// The winning (highest) file is never removed, so the counter can
	// never regress.
	if ents, err := os.ReadDir(dir); err == nil {
		for _, e := range ents {
			if n, ok := parseTokenFileName(e.Name()); ok && n < next {
				os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
	return Lease{Tenant: tenant, Name: name, Owner: owner, Token: next, Expires: expires}, nil
}

// checkLive verifies lease is still the name's live claim: its token is
// the highest issued and the owner matches.
func (s *Disk) checkLive(lease Lease) error {
	// Lease fields become path components below; vet them like any key.
	if err := validLeaseArgs(lease.Tenant, lease.Name, lease.Owner, time.Second); err != nil {
		return err
	}
	dir := s.leaseDir(lease.Tenant, lease.Name)
	max, err := maxToken(dir)
	if err != nil {
		return err
	}
	if max != lease.Token {
		return fmt.Errorf("%w: %s/%s token %d superseded by %d",
			ErrLeaseLost, lease.Tenant, lease.Name, lease.Token, max)
	}
	rec, _, err := readTokenFile(filepath.Join(dir, tokenFileName(lease.Token)))
	if err != nil {
		return fmt.Errorf("%w: %s/%s token %d unreadable",
			ErrLeaseLost, lease.Tenant, lease.Name, lease.Token)
	}
	if rec.Owner != lease.Owner {
		return fmt.Errorf("%w: %s/%s token %d owned by %q",
			ErrLeaseLost, lease.Tenant, lease.Name, lease.Token, rec.Owner)
	}
	return nil
}

// RenewLease implements Store.
func (s *Disk) RenewLease(lease Lease, ttl time.Duration) (Lease, error) {
	if !lease.Valid() {
		return Lease{}, fmt.Errorf("%w: not a lease", ErrInvalidKey)
	}
	ttl = clampTTL(ttl)
	if err := s.checkLive(lease); err != nil {
		return Lease{}, err
	}
	expires := time.Now().Add(ttl)
	b, _ := json.Marshal(leaseRecord{Owner: lease.Owner, ExpiresNS: expires.UnixNano()})
	path := filepath.Join(s.leaseDir(lease.Tenant, lease.Name), tokenFileName(lease.Token))
	if err := writeFileAtomic(path, b); err != nil {
		return Lease{}, fmt.Errorf("store: renewing lease: %w", err)
	}
	// Re-check after the rename: a contender that found us expired may
	// have issued a higher token while our rename was in flight. Better
	// to learn it now than at the next fenced write.
	if err := s.checkLive(lease); err != nil {
		return Lease{}, err
	}
	lease.Expires = expires
	return lease, nil
}

// ReleaseLease implements Store.
func (s *Disk) ReleaseLease(lease Lease) error {
	if !lease.Valid() {
		return fmt.Errorf("%w: not a lease", ErrInvalidKey)
	}
	if err := s.checkLive(lease); err != nil {
		return err
	}
	// Expire in place (ExpiresNS 0) rather than deleting: the file is
	// what keeps the token counter monotonic.
	b, _ := json.Marshal(leaseRecord{Owner: lease.Owner, ExpiresNS: 0})
	path := filepath.Join(s.leaseDir(lease.Tenant, lease.Name), tokenFileName(lease.Token))
	if err := writeFileAtomic(path, b); err != nil {
		return fmt.Errorf("store: releasing lease: %w", err)
	}
	return nil
}

// PutIfLeased implements Store. The fence marks under the artefact's
// own directory are the storage-side half of the protocol: a writer
// marks its token before the payload write, any writer observing a
// higher mark refuses, and a post-write convergence pass repairs the
// LATEST pointer if a lower-token write overlapped a higher one's.
func (s *Disk) PutIfLeased(lease Lease, kind Kind, name string, payload []byte) (Info, error) {
	if !lease.Valid() {
		return Info{}, fmt.Errorf("%w: not a lease", ErrInvalidKey)
	}
	if err := validKey(Key{Tenant: lease.Tenant, Kind: kind, Name: name}); err != nil {
		return Info{}, err
	}
	if err := s.checkLive(lease); err != nil {
		return Info{}, err
	}
	if time.Now().After(lease.Expires) {
		return Info{}, fmt.Errorf("%w: %s/%s token %d expired",
			ErrLeaseLost, lease.Tenant, lease.Name, lease.Token)
	}
	fdir := s.fenceDir(lease.Tenant, kind, name)
	highest, err := maxToken(fdir)
	if err != nil {
		return Info{}, err
	}
	if highest > lease.Token {
		return Info{}, fmt.Errorf("%w: %s/%s/%s fenced at token %d > %d",
			ErrLeaseLost, lease.Tenant, kind, name, highest, lease.Token)
	}
	// Mark the fence BEFORE writing, recording the version this token is
	// about to install, so a concurrent lower-token writer sees the mark
	// and any repair pass knows which version should win.
	version := Version(payload)
	if err := writeFileAtomic(filepath.Join(fdir, tokenFileName(lease.Token)), []byte(version)); err != nil {
		return Info{}, fmt.Errorf("store: writing fence mark: %w", err)
	}
	info, err := s.Put(lease.Tenant, kind, name, payload)
	if err != nil {
		return Info{}, err
	}
	// Convergence pass: if a higher token marked the fence while our
	// write was in flight, our LATEST rename may have landed after (and
	// clobbered) the successor's. Re-point LATEST at the highest-token
	// version whose content has landed, then report the loss.
	after, err := maxToken(fdir)
	if err == nil && after > lease.Token {
		if vb, rerr := os.ReadFile(filepath.Join(fdir, tokenFileName(after))); rerr == nil {
			v := strings.TrimSpace(string(vb))
			nd := s.nameDir(lease.Tenant, kind, name)
			if validVersion(v) == nil {
				if _, serr := os.Stat(filepath.Join(nd, "refs", v)); serr == nil {
					writeFileAtomic(filepath.Join(nd, latestFile), []byte(v)) //nolint:errcheck // best-effort repair
				}
			}
		}
		return info, fmt.Errorf("%w: %s/%s/%s fenced at token %d > %d during write",
			ErrLeaseLost, lease.Tenant, kind, name, after, lease.Token)
	}
	// Old fence marks below the highest are history; collect them.
	if ents, rerr := os.ReadDir(fdir); rerr == nil {
		for _, e := range ents {
			if n, ok := parseTokenFileName(e.Name()); ok && n < lease.Token {
				os.Remove(filepath.Join(fdir, e.Name()))
			}
		}
	}
	return info, nil
}
