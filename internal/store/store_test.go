package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// backends runs a subtest against both production Store
// implementations, so every semantic test in this file is a
// conformance test.
func backends(t *testing.T, fn func(t *testing.T, s Store)) {
	t.Helper()
	t.Run("memory", func(t *testing.T) { fn(t, NewMemory()) })
	t.Run("disk", func(t *testing.T) { fn(t, OpenDisk(t.TempDir())) })
}

func TestPutGetRoundTrip(t *testing.T) {
	backends(t, func(t *testing.T, s Store) {
		payload := []byte("hello artefact")
		info, err := s.Put("acme", KindModel, "ota", payload)
		if err != nil {
			t.Fatal(err)
		}
		if info.Version != Version(payload) {
			t.Errorf("Version = %s, want content address %s", info.Version, Version(payload))
		}
		if info.Size != int64(len(payload)) {
			t.Errorf("Size = %d, want %d", info.Size, len(payload))
		}

		// Latest fetch.
		got, gi, err := s.Get(Key{Tenant: "acme", Kind: KindModel, Name: "ota"})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) || gi.Version != info.Version {
			t.Errorf("Get latest = %q @%s", got, gi.Version)
		}
		// Version-pinned fetch.
		got, _, err = s.Get(Key{Tenant: "acme", Kind: KindModel, Name: "ota", Version: info.Version})
		if err != nil || !bytes.Equal(got, payload) {
			t.Errorf("Get pinned: %q, %v", got, err)
		}
		// Stat without payload.
		si, err := s.Stat(Key{Tenant: "acme", Kind: KindModel, Name: "ota"})
		if err != nil || si.Version != info.Version || si.Size != info.Size {
			t.Errorf("Stat = %+v, %v", si, err)
		}
	})
}

func TestVersionHistoryAndLatest(t *testing.T) {
	backends(t, func(t *testing.T, s Store) {
		v1, err := s.Put("acme", KindModel, "ota", []byte("one"))
		if err != nil {
			t.Fatal(err)
		}
		v2, err := s.Put("acme", KindModel, "ota", []byte("two"))
		if err != nil {
			t.Fatal(err)
		}
		if v1.Version == v2.Version {
			t.Fatal("distinct payloads share a version")
		}
		// Latest moved to v2; v1 stays addressable.
		got, _, err := s.Get(Key{Tenant: "acme", Kind: KindModel, Name: "ota"})
		if err != nil || string(got) != "two" {
			t.Fatalf("latest = %q, %v", got, err)
		}
		got, _, err = s.Get(Key{Tenant: "acme", Kind: KindModel, Name: "ota", Version: v1.Version})
		if err != nil || string(got) != "one" {
			t.Fatalf("pinned v1 = %q, %v", got, err)
		}
		// Re-putting v1's content is idempotent and moves latest back.
		v1b, err := s.Put("acme", KindModel, "ota", []byte("one"))
		if err != nil || v1b.Version != v1.Version {
			t.Fatalf("re-put: %+v, %v", v1b, err)
		}
		got, _, _ = s.Get(Key{Tenant: "acme", Kind: KindModel, Name: "ota"})
		if string(got) != "one" {
			t.Fatalf("latest after re-put = %q", got)
		}
	})
}

func TestTenantIsolationAndListing(t *testing.T) {
	backends(t, func(t *testing.T, s Store) {
		for _, put := range []struct{ tenant, name, body string }{
			{"acme", "ota", "acme-ota"},
			{"acme", "buf", "acme-buf"},
			{"globex", "ota", "globex-ota"},
		} {
			if _, err := s.Put(put.tenant, KindModel, put.name, []byte(put.body)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.Put("acme", KindCheckpoint, "job", []byte("ck")); err != nil {
			t.Fatal(err)
		}

		// Same name, different tenants: independent content.
		got, _, err := s.Get(Key{Tenant: "globex", Kind: KindModel, Name: "ota"})
		if err != nil || string(got) != "globex-ota" {
			t.Fatalf("globex/ota = %q, %v", got, err)
		}

		infos, err := s.List("acme", KindModel)
		if err != nil {
			t.Fatal(err)
		}
		if len(infos) != 2 || infos[0].Name != "buf" || infos[1].Name != "ota" {
			t.Fatalf("List(acme, models) = %+v", infos)
		}
		// Kinds do not bleed into each other.
		cks, err := s.List("acme", KindCheckpoint)
		if err != nil || len(cks) != 1 || cks[0].Name != "job" {
			t.Fatalf("List(acme, checkpoints) = %+v, %v", cks, err)
		}
		// Unknown tenant lists empty, not an error.
		none, err := s.List("nobody", KindModel)
		if err != nil || len(none) != 0 {
			t.Fatalf("List(nobody) = %+v, %v", none, err)
		}

		tenants, err := s.Tenants()
		if err != nil {
			t.Fatal(err)
		}
		if len(tenants) != 2 || tenants[0] != "acme" || tenants[1] != "globex" {
			t.Fatalf("Tenants = %v", tenants)
		}
	})
}

func TestNotFound(t *testing.T) {
	backends(t, func(t *testing.T, s Store) {
		if _, _, err := s.Get(Key{Tenant: "acme", Kind: KindModel, Name: "nope"}); !errors.Is(err, ErrNotFound) {
			t.Errorf("Get missing: %v, want ErrNotFound", err)
		}
		if _, err := s.Stat(Key{Tenant: "acme", Kind: KindModel, Name: "nope"}); !errors.Is(err, ErrNotFound) {
			t.Errorf("Stat missing: %v, want ErrNotFound", err)
		}
		if err := s.Delete(Key{Tenant: "acme", Kind: KindModel, Name: "nope"}); !errors.Is(err, ErrNotFound) {
			t.Errorf("Delete missing: %v, want ErrNotFound", err)
		}
		// A present name with an absent pinned version is also not found.
		if _, err := s.Put("acme", KindModel, "ota", []byte("x")); err != nil {
			t.Fatal(err)
		}
		bogus := Version([]byte("other"))
		if _, _, err := s.Get(Key{Tenant: "acme", Kind: KindModel, Name: "ota", Version: bogus}); !errors.Is(err, ErrNotFound) {
			t.Errorf("Get bogus version: %v, want ErrNotFound", err)
		}
	})
}

func TestDelete(t *testing.T) {
	backends(t, func(t *testing.T, s Store) {
		v1, _ := s.Put("acme", KindModel, "ota", []byte("one"))
		v2, _ := s.Put("acme", KindModel, "ota", []byte("two"))

		// Deleting the latest version promotes the remaining one.
		if err := s.Delete(Key{Tenant: "acme", Kind: KindModel, Name: "ota", Version: v2.Version}); err != nil {
			t.Fatal(err)
		}
		got, gi, err := s.Get(Key{Tenant: "acme", Kind: KindModel, Name: "ota"})
		if err != nil || string(got) != "one" || gi.Version != v1.Version {
			t.Fatalf("after version delete: %q @%s, %v", got, gi.Version, err)
		}
		// Deleting with no version removes the name entirely.
		if err := s.Delete(Key{Tenant: "acme", Kind: KindModel, Name: "ota"}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Get(Key{Tenant: "acme", Kind: KindModel, Name: "ota"}); !errors.Is(err, ErrNotFound) {
			t.Errorf("after delete: %v, want ErrNotFound", err)
		}
		infos, _ := s.List("acme", KindModel)
		if len(infos) != 0 {
			t.Errorf("List after delete = %+v", infos)
		}
	})
}

func TestValidateKey(t *testing.T) {
	good := []string{"a", "ota-demo", "team_a.v2", "A9", "x" + string(make([]byte, 0))}
	for _, s := range good {
		if err := ValidateKey(s); err != nil {
			t.Errorf("ValidateKey(%q) = %v, want ok", s, err)
		}
	}
	bad := []string{
		"", ".", "..", ".hidden", "a/b", `a\b`, "a b", "a\x00b", "über",
		"../escape", "a/../b", string(make([]byte, maxKeyLen+1)),
	}
	for _, s := range bad {
		if err := ValidateKey(s); !errors.Is(err, ErrInvalidKey) {
			t.Errorf("ValidateKey(%q) = %v, want ErrInvalidKey", s, err)
		}
	}
}

// TestPathTraversalRejected drives hostile tenant/name segments against
// a real disk store and asserts both that every operation fails with
// ErrInvalidKey and that nothing is ever created outside (or inside)
// the store root.
func TestPathTraversalRejected(t *testing.T) {
	parent := t.TempDir()
	root := filepath.Join(parent, "store")
	s := OpenDisk(root)
	// A sibling file an escape would overwrite.
	victim := filepath.Join(parent, "victim")
	if err := os.WriteFile(victim, []byte("untouched"), 0o644); err != nil {
		t.Fatal(err)
	}

	hostile := []string{"..", "../..", "../victim", "a/../../victim", "/etc", `..\victim`, ".", ".ssh"}
	for _, tenant := range append(hostile, "ok") {
		for _, name := range append(hostile, "ok") {
			if tenant == "ok" && name == "ok" {
				continue
			}
			if _, err := s.Put(tenant, KindModel, name, []byte("x")); !errors.Is(err, ErrInvalidKey) {
				t.Errorf("Put(%q, %q) = %v, want ErrInvalidKey", tenant, name, err)
			}
			if _, _, err := s.Get(Key{Tenant: tenant, Kind: KindModel, Name: name}); !errors.Is(err, ErrInvalidKey) {
				t.Errorf("Get(%q, %q) = %v, want ErrInvalidKey", tenant, name, err)
			}
			if err := s.Delete(Key{Tenant: tenant, Kind: KindModel, Name: name}); !errors.Is(err, ErrInvalidKey) {
				t.Errorf("Delete(%q, %q) = %v, want ErrInvalidKey", tenant, name, err)
			}
		}
	}
	// Hostile versions must not traverse either.
	for _, v := range []string{"../../victim", "x", "ABCDEF"} {
		if _, _, err := s.Get(Key{Tenant: "ok", Kind: KindModel, Name: "ok", Version: v}); !errors.Is(err, ErrInvalidKey) {
			t.Errorf("Get version %q = %v, want ErrInvalidKey", v, err)
		}
	}

	// Nothing escaped: the root was never even created (no valid write
	// happened), and the victim file is intact.
	if _, err := os.Stat(root); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("store root created by rejected writes: %v", err)
	}
	if b, err := os.ReadFile(victim); err != nil || string(b) != "untouched" {
		t.Errorf("victim file touched: %q, %v", b, err)
	}
	ents, err := os.ReadDir(parent)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "victim" {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Errorf("unexpected entries beside the root: %v", names)
	}
}

// TestCorruptArtefacts damages a real on-disk blob every way the
// envelope guards against and asserts each damage class surfaces its
// typed error — and that all of them are ErrCorrupt, never a panic or
// a silently empty payload.
func TestCorruptArtefacts(t *testing.T) {
	payload := []byte("a model payload of reasonable length")

	newStore := func(t *testing.T) (*Disk, Key, string) {
		s := OpenDisk(t.TempDir())
		info, err := s.Put("acme", KindModel, "ota", payload)
		if err != nil {
			t.Fatal(err)
		}
		return s, info.Key, s.blobPath(info.Version)
	}

	cases := []struct {
		name   string
		damage func(t *testing.T, blobPath string)
		want   error
	}{
		{"bad magic", func(t *testing.T, bp string) {
			b, _ := os.ReadFile(bp)
			copy(b, "XXXX")
			mustWrite(t, bp, b)
		}, ErrBadMagic},
		{"future format version", func(t *testing.T, bp string) {
			b, _ := os.ReadFile(bp)
			b[4], b[5] = 0xFF, 0xFF
			mustWrite(t, bp, b)
		}, ErrBadVersion},
		{"short read", func(t *testing.T, bp string) {
			b, _ := os.ReadFile(bp)
			mustWrite(t, bp, b[:len(b)-7])
		}, ErrTruncated},
		{"header only", func(t *testing.T, bp string) {
			b, _ := os.ReadFile(bp)
			mustWrite(t, bp, b[:5])
		}, ErrTruncated},
		{"flipped payload byte", func(t *testing.T, bp string) {
			b, _ := os.ReadFile(bp)
			b[len(b)-1] ^= 0x01
			mustWrite(t, bp, b)
		}, ErrFingerprint},
		{"missing blob", func(t *testing.T, bp string) {
			if err := os.Remove(bp); err != nil {
				t.Fatal(err)
			}
		}, ErrCorrupt},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, key, bp := newStore(t)
			tc.damage(t, bp)
			got, _, err := s.Get(key)
			if !errors.Is(err, tc.want) {
				t.Fatalf("Get = (%q, %v), want %v", got, err, tc.want)
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Errorf("error %v does not wrap ErrCorrupt", err)
			}
			if len(got) != 0 {
				t.Errorf("corrupt read returned a payload: %q", got)
			}
		})
	}

	// A blob holding the wrong content for its address (e.g. a restore
	// from the wrong backup) is caught by the content-address check.
	t.Run("wrong content at address", func(t *testing.T) {
		s, key, bp := newStore(t)
		mustWrite(t, bp, encodeArtefact(KindModel, []byte("not the promised content")))
		if _, _, err := s.Get(key); !errors.Is(err, ErrFingerprint) {
			t.Fatalf("Get = %v, want ErrFingerprint", err)
		}
	})

	// Kind confusion: a checkpoint blob served where a model is expected.
	t.Run("kind mismatch", func(t *testing.T) {
		s, key, bp := newStore(t)
		mustWrite(t, bp, encodeArtefact(KindCheckpoint, payload))
		if _, _, err := s.Get(key); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Get = %v, want ErrCorrupt", err)
		}
	})
}

func mustWrite(t *testing.T, path string, b []byte) {
	t.Helper()
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestDiskSharedRoot simulates two replicas over one directory: what
// one writes, the other reads without any coordination beyond the
// filesystem.
func TestDiskSharedRoot(t *testing.T) {
	root := t.TempDir()
	a, b := OpenDisk(root), OpenDisk(root)
	info, err := a.Put("acme", KindModel, "ota", []byte("shared"))
	if err != nil {
		t.Fatal(err)
	}
	got, gi, err := b.Get(Key{Tenant: "acme", Kind: KindModel, Name: "ota"})
	if err != nil || string(got) != "shared" || gi.Version != info.Version {
		t.Fatalf("replica read: %q @%s, %v", got, gi.Version, err)
	}
	// Concurrent identical Puts from both handles converge.
	const n = 8
	errs := make(chan error, 2*n)
	for i := 0; i < n; i++ {
		go func() { _, err := a.Put("acme", KindModel, "ota", []byte("converge")); errs <- err }()
		go func() { _, err := b.Put("acme", KindModel, "ota", []byte("converge")); errs <- err }()
	}
	for i := 0; i < 2*n; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("concurrent put: %v", err)
		}
	}
	got, _, err = b.Get(Key{Tenant: "acme", Kind: KindModel, Name: "ota"})
	if err != nil || string(got) != "converge" {
		t.Fatalf("after concurrent puts: %q, %v", got, err)
	}
}

func TestArtefactEnvelopeRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("long"), 1000)} {
		blob := encodeArtefact(KindModel, payload)
		got, err := decodeArtefact(blob, KindModel, Version(payload))
		if err != nil {
			t.Fatalf("decode(%d bytes): %v", len(payload), err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip changed payload")
		}
	}
	// Determinism: the envelope of equal payloads is byte-identical
	// (content addressing depends on it).
	p := []byte("determinism")
	if !bytes.Equal(encodeArtefact(KindModel, p), encodeArtefact(KindModel, p)) {
		t.Error("envelope encoding not deterministic")
	}
	if Version(p) != Version(append([]byte(nil), p...)) {
		t.Error("Version not deterministic")
	}
	if Version(p) == Version([]byte("determinism!")) {
		t.Error("distinct payloads share a version")
	}
	if err := fmt.Errorf("wrap: %w", ErrFingerprint); !errors.Is(err, ErrCorrupt) {
		t.Error("ErrFingerprint does not wrap ErrCorrupt")
	}
}
