package store

import (
	"fmt"
	"sync"
	"time"
)

// memLease is one name's lease state: the live claim plus the highest
// token ever issued (kept even after release so tokens never regress).
type memLease struct {
	owner   string
	token   uint64 // highest token ever issued for the name
	expires time.Time
}

// leaseKey namespaces leases per tenant.
type leaseKey struct {
	tenant, name string
}

// fenceKey identifies one fenced artefact.
type fenceKey struct {
	tenant string
	kind   Kind
	name   string
}

// memLeases is the Memory backend's lease table, lazily allocated.
type memLeases struct {
	mu     sync.Mutex
	leases map[leaseKey]*memLease
	fences map[fenceKey]uint64 // highest token that has written the artefact
}

func (t *memLeases) init() {
	if t.leases == nil {
		t.leases = make(map[leaseKey]*memLease)
		t.fences = make(map[fenceKey]uint64)
	}
}

// AcquireLease implements Store.
func (s *Memory) AcquireLease(tenant, name, owner string, ttl time.Duration) (Lease, error) {
	if err := validLeaseArgs(tenant, name, owner, ttl); err != nil {
		return Lease{}, err
	}
	ttl = clampTTL(ttl)
	s.leases.mu.Lock()
	defer s.leases.mu.Unlock()
	s.leases.init()
	now := time.Now()
	k := leaseKey{tenant, name}
	l, ok := s.leases.leases[k]
	if ok && now.Before(l.expires) {
		return Lease{}, fmt.Errorf("%w: %s/%s by %q until %s", ErrLeaseHeld, tenant, name, l.owner, l.expires.Format(time.RFC3339Nano))
	}
	if !ok {
		l = &memLease{}
		s.leases.leases[k] = l
	}
	l.token++ // monotonic: survives expiry and release
	l.owner = owner
	l.expires = now.Add(ttl)
	return Lease{Tenant: tenant, Name: name, Owner: owner, Token: l.token, Expires: l.expires}, nil
}

// RenewLease implements Store.
func (s *Memory) RenewLease(lease Lease, ttl time.Duration) (Lease, error) {
	if !lease.Valid() {
		return Lease{}, fmt.Errorf("%w: not a lease", ErrInvalidKey)
	}
	ttl = clampTTL(ttl)
	s.leases.mu.Lock()
	defer s.leases.mu.Unlock()
	s.leases.init()
	l, ok := s.leases.leases[leaseKey{lease.Tenant, lease.Name}]
	if !ok || l.token != lease.Token || l.owner != lease.Owner {
		return Lease{}, fmt.Errorf("%w: %s/%s token %d", ErrLeaseLost, lease.Tenant, lease.Name, lease.Token)
	}
	l.expires = time.Now().Add(ttl)
	lease.Expires = l.expires
	return lease, nil
}

// ReleaseLease implements Store.
func (s *Memory) ReleaseLease(lease Lease) error {
	if !lease.Valid() {
		return fmt.Errorf("%w: not a lease", ErrInvalidKey)
	}
	s.leases.mu.Lock()
	defer s.leases.mu.Unlock()
	s.leases.init()
	l, ok := s.leases.leases[leaseKey{lease.Tenant, lease.Name}]
	if !ok || l.token != lease.Token || l.owner != lease.Owner {
		return fmt.Errorf("%w: %s/%s token %d", ErrLeaseLost, lease.Tenant, lease.Name, lease.Token)
	}
	// Expire immediately; the entry stays so the token counter never
	// regresses.
	l.expires = time.Time{}
	return nil
}

// PutIfLeased implements Store. The whole check-write-mark sequence
// runs under the lease table lock, so for the Memory backend fenced
// writes are truly atomic.
func (s *Memory) PutIfLeased(lease Lease, kind Kind, name string, payload []byte) (Info, error) {
	if !lease.Valid() {
		return Info{}, fmt.Errorf("%w: not a lease", ErrInvalidKey)
	}
	s.leases.mu.Lock()
	defer s.leases.mu.Unlock()
	s.leases.init()
	l, ok := s.leases.leases[leaseKey{lease.Tenant, lease.Name}]
	if !ok || l.token != lease.Token || l.owner != lease.Owner || !time.Now().Before(l.expires) {
		return Info{}, fmt.Errorf("%w: %s/%s token %d", ErrLeaseLost, lease.Tenant, lease.Name, lease.Token)
	}
	fk := fenceKey{lease.Tenant, kind, name}
	if highest := s.leases.fences[fk]; highest > lease.Token {
		return Info{}, fmt.Errorf("%w: %s/%s/%s fenced at token %d > %d",
			ErrLeaseLost, lease.Tenant, kind, name, highest, lease.Token)
	}
	info, err := s.Put(lease.Tenant, kind, name, payload)
	if err != nil {
		return Info{}, err
	}
	s.leases.fences[fk] = lease.Token
	return info, nil
}
