package store

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Memory is the in-process Store backend: artefacts live for the life
// of the process. It runs the same envelope encode/verify cycle as the
// Disk backend so both enforce identical semantics (and the
// conformance suite exercises corruption handling on both).
type Memory struct {
	mu      sync.RWMutex
	tenants map[string]map[Kind]map[string]*memName

	// leases is the lease table (lease_mem.go); it has its own lock,
	// acquired strictly before mu (PutIfLeased calls Put under it).
	leases memLeases
}

// memName is one (tenant, kind, name)'s version history.
type memName struct {
	latest   string
	versions map[string]memVersion
}

type memVersion struct {
	blob    []byte // full artefact envelope
	size    int64
	created time.Time
}

// NewMemory creates an empty in-process store.
func NewMemory() *Memory {
	return &Memory{tenants: map[string]map[Kind]map[string]*memName{}}
}

// Backend implements Store.
func (s *Memory) Backend() string { return "memory" }

// Put implements Store.
func (s *Memory) Put(tenant string, kind Kind, name string, payload []byte) (Info, error) {
	key := Key{Tenant: tenant, Kind: kind, Name: name}
	if err := validKey(key); err != nil {
		return Info{}, err
	}
	key.Version = Version(payload)
	blob := encodeArtefact(kind, payload)

	s.mu.Lock()
	defer s.mu.Unlock()
	kinds, ok := s.tenants[tenant]
	if !ok {
		kinds = map[Kind]map[string]*memName{}
		s.tenants[tenant] = kinds
	}
	names, ok := kinds[kind]
	if !ok {
		names = map[string]*memName{}
		kinds[kind] = names
	}
	n, ok := names[name]
	if !ok {
		n = &memName{versions: map[string]memVersion{}}
		names[name] = n
	}
	v, ok := n.versions[key.Version]
	if !ok {
		v = memVersion{blob: blob, size: int64(len(payload)), created: time.Now()}
		n.versions[key.Version] = v
	}
	n.latest = key.Version
	return Info{Key: key, Size: v.size, Created: v.created}, nil
}

// lookup resolves key to its stored version under the read lock.
func (s *Memory) lookup(key Key) (*memName, memVersion, Key, error) {
	if err := validKey(key); err != nil {
		return nil, memVersion{}, key, err
	}
	n, ok := s.tenants[key.Tenant][key.Kind][key.Name]
	if !ok {
		return nil, memVersion{}, key, fmt.Errorf("%w: %s/%s/%s", ErrNotFound, key.Tenant, key.Kind, key.Name)
	}
	if key.Version == "" {
		key.Version = n.latest
	}
	v, ok := n.versions[key.Version]
	if !ok {
		return nil, memVersion{}, key, fmt.Errorf("%w: %s/%s/%s@%s", ErrNotFound, key.Tenant, key.Kind, key.Name, key.Version)
	}
	return n, v, key, nil
}

// Get implements Store.
func (s *Memory) Get(key Key) ([]byte, Info, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, v, key, err := s.lookup(key)
	if err != nil {
		return nil, Info{}, err
	}
	payload, err := decodeArtefact(v.blob, key.Kind, key.Version)
	if err != nil {
		return nil, Info{}, err
	}
	out := append([]byte(nil), payload...)
	return out, Info{Key: key, Size: v.size, Created: v.created}, nil
}

// Stat implements Store.
func (s *Memory) Stat(key Key) (Info, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, v, key, err := s.lookup(key)
	if err != nil {
		return Info{}, err
	}
	return Info{Key: key, Size: v.size, Created: v.created}, nil
}

// List implements Store.
func (s *Memory) List(tenant string, kind Kind) ([]Info, error) {
	if err := validKey(Key{Tenant: tenant, Kind: kind, Name: "x"}); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := s.tenants[tenant][kind]
	out := make([]Info, 0, len(names))
	for name, n := range names {
		v, ok := n.versions[n.latest]
		if !ok {
			continue
		}
		out = append(out, Info{
			Key:     Key{Tenant: tenant, Kind: kind, Name: name, Version: n.latest},
			Size:    v.size,
			Created: v.created,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Tenants implements Store.
func (s *Memory) Tenants() ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tenants))
	for t, kinds := range s.tenants {
		empty := true
		for _, names := range kinds {
			if len(names) > 0 {
				empty = false
				break
			}
		}
		if !empty {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Delete implements Store.
func (s *Memory) Delete(key Key) error {
	wantAll := key.Version == ""
	s.mu.Lock()
	defer s.mu.Unlock()
	n, _, key, err := s.lookup(key)
	if err != nil {
		return err
	}
	names := s.tenants[key.Tenant][key.Kind]
	if wantAll || len(n.versions) == 1 {
		delete(names, key.Name)
		return nil
	}
	delete(n.versions, key.Version)
	if n.latest == key.Version {
		// Promote the newest remaining version.
		var newest string
		var newestT time.Time
		for v, mv := range n.versions {
			if newest == "" || mv.created.After(newestT) {
				newest, newestT = v, mv.created
			}
		}
		n.latest = newest
	}
	return nil
}
