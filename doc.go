// Package analogyield reproduces "A New Approach for Combining Yield
// and Performance in Behavioural Models for Analogue Integrated
// Circuits" (Ali, Wilcock, Wilson, Brown — DATE 2008): a flow that
// builds a combined performance + statistical-variation behavioural
// model for an analogue circuit by multi-objective (weight-based GA)
// optimisation, Pareto-front extraction, per-point Monte Carlo analysis
// and cubic-spline table models, then answers yield-targeted design
// queries from the tables alone.
//
// The implementation lives under internal/: the simulator substrate
// (num, mos, circuit, netlist, analysis, measure), the statistical
// machinery (process, montecarlo, yield), the optimisation stack (ga,
// wbga, pareto), the table models (spline, table), the paper's flow
// (core), its benchmark circuit (ota), the behavioural model and
// Verilog-A generator (behave), and the §5 filter application (filter).
// See DESIGN.md for the full inventory and EXPERIMENTS.md for the
// paper-versus-measured record; bench_test.go regenerates every table
// and figure of the paper's evaluation.
package analogyield
